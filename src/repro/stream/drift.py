"""Divergence-drift scoring between consecutive windows.

Consecutive windows of a stationary stream produce near-identical
divergence tables; drift shows up as (a) a per-itemset divergence shift
that is both large and statistically significant, or (b) churn of the
top-k ranking. Itemsets are aligned across windows by their canonical
key (the frozenset of global item ids — identical across windows
because the catalog is fixed for the stream's lifetime).

Per aligned itemset, the shift test compares the two windows' outcome
counts with the same Beta-posterior Welch machinery the paper uses for
within-window significance (:mod:`repro.core.significance`): posterior
moments of each window's rate, Welch t between them, gated by a
divergence-delta threshold. Alerts are structured records
(:class:`DriftAlert`) ready for the CLI table and the server's
``/api/monitor/alerts`` payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError
from repro.resilience import checkpoint


@dataclass(frozen=True)
class DriftConfig:
    """Alert thresholds for windowed drift detection.

    ``min_delta`` is the minimum absolute change of an itemset's
    divergence between consecutive windows (the primary
    ``alert_threshold`` knob); ``min_t`` the minimum Welch t between the
    two windows' posterior rates (suppresses small-sample noise);
    ``churn_threshold`` the minimum top-k churn fraction for a
    ranking-level alert; ``top_k`` the ranking depth churn is measured
    over. ``max_alerts_per_window`` caps shift alerts per window pair
    (strongest first) so a regime change cannot flood the alert log.
    """

    min_delta: float = 0.15
    min_t: float = 3.0
    churn_threshold: float = 0.6
    top_k: int = 10
    max_alerts_per_window: int = 20

    def __post_init__(self) -> None:
        if not math.isfinite(self.min_delta) or self.min_delta < 0:
            raise ReproError(f"min_delta must be >= 0, got {self.min_delta}")
        if not math.isfinite(self.min_t) or self.min_t < 0:
            raise ReproError(f"min_t must be >= 0, got {self.min_t}")
        if self.churn_threshold < 0:
            raise ReproError(
                f"churn_threshold must be >= 0, got {self.churn_threshold}"
            )
        if self.top_k < 1:
            raise ReproError(f"top_k must be >= 1, got {self.top_k}")


@dataclass(frozen=True)
class DriftAlert:
    """One structured drift alert.

    ``kind`` is ``"divergence_shift"`` (per-itemset, ``itemset`` names
    the subgroup) or ``"rank_churn"`` (window-level, ``itemset`` is
    ``None`` and ``churn`` carries the churned fraction of the top-k).
    ``window_index`` is the index of the *newer* window of the pair.
    """

    kind: str
    window_index: int
    itemset: str | None = None
    key: frozenset[int] | None = field(default=None, repr=False)
    prev_divergence: float = float("nan")
    cur_divergence: float = float("nan")
    delta: float = float("nan")
    t_statistic: float = float("nan")
    prev_support: float = float("nan")
    cur_support: float = float("nan")
    churn: float = float("nan")

    def as_dict(self) -> dict:
        """JSON-ready representation (non-finite floats stay; the
        server's sanitizer nulls them at the edge)."""
        return {
            "kind": self.kind,
            "window": self.window_index,
            "itemset": self.itemset,
            "items": sorted(self.key) if self.key is not None else None,
            "prev_divergence": self.prev_divergence,
            "cur_divergence": self.cur_divergence,
            "delta": self.delta,
            "t": self.t_statistic,
            "prev_support": self.prev_support,
            "cur_support": self.cur_support,
            "churn": self.churn,
        }


def rank_churn(
    prev: PatternDivergenceResult,
    cur: PatternDivergenceResult,
    k: int,
) -> float:
    """Fraction of the top-k divergent itemsets replaced between windows.

    ``0`` when the rankings agree as sets, ``1`` when they are disjoint.
    The comparison depth is capped by the shorter ranking; two windows
    with no ranked patterns have zero churn.
    """
    prev_top = [prev.key_of(r.itemset) for r in prev.top_k(k)]
    cur_top = [cur.key_of(r.itemset) for r in cur.top_k(k)]
    depth = min(len(prev_top), len(cur_top))
    if depth == 0:
        return 0.0
    overlap = len(set(prev_top[:depth]) & set(cur_top[:depth]))
    return 1.0 - overlap / depth


def score_drift(
    prev: PatternDivergenceResult,
    cur: PatternDivergenceResult,
    window_index: int,
    config: DriftConfig | None = None,
) -> list[DriftAlert]:
    """Score window ``window_index`` against its predecessor.

    Returns divergence-shift alerts (strongest delta first, capped at
    ``config.max_alerts_per_window``) followed by an optional rank-churn
    alert. Itemsets are aligned by canonical key; itemsets frequent in
    only one window contribute to churn but not to shift alerts (no
    paired counts to test).
    """
    config = config or DriftConfig()
    checkpoint("stream.drift")
    shared = [
        key
        for key in cur.frequent
        if len(key) > 0 and key in prev.frequent
    ]
    alerts: list[DriftAlert] = []
    if shared:
        prev_counts = np.array(
            [prev.frequent.counts(k)[:3] for k in shared], dtype=np.float64
        )
        cur_counts = np.array(
            [cur.frequent.counts(k)[:3] for k in shared], dtype=np.float64
        )
        prev_div = np.array([prev.divergence_or_zero(k) for k in shared])
        cur_div = np.array([cur.divergence_or_zero(k) for k in shared])
        delta = cur_div - prev_div
        t_stat = _welch_between_windows(prev_counts, cur_counts)
        hit = (np.abs(delta) >= config.min_delta) & (t_stat >= config.min_t)
        order = np.argsort(-np.abs(delta))
        picked = [i for i in order.tolist() if hit[i]]
        picked = picked[: config.max_alerts_per_window]
        for i in picked:
            key = shared[i]
            alerts.append(
                DriftAlert(
                    kind="divergence_shift",
                    window_index=window_index,
                    itemset=str(cur.itemset_of(key)),
                    key=key,
                    prev_divergence=float(prev_div[i]),
                    cur_divergence=float(cur_div[i]),
                    delta=float(delta[i]),
                    t_statistic=float(t_stat[i]),
                    prev_support=float(prev_counts[i, 0] / prev.n_rows),
                    cur_support=float(cur_counts[i, 0] / cur.n_rows),
                )
            )
    churn = rank_churn(prev, cur, config.top_k)
    if churn >= config.churn_threshold:
        alerts.append(
            DriftAlert(
                kind="rank_churn",
                window_index=window_index,
                churn=churn,
            )
        )
    return alerts


def _welch_between_windows(
    prev_counts: np.ndarray, cur_counts: np.ndarray
) -> np.ndarray:
    """Vectorized Welch |t| between two windows' posterior rates.

    ``*_counts`` are ``(N, 3)`` float arrays of ``[n, T, F]`` per
    aligned itemset; element ``i`` equals
    ``welch_t_statistic(*beta_moments(T_prev, F_prev),
    *beta_moments(T_cur, F_cur))`` exactly.
    """
    mu_p, var_p = _beta_moments_vec(prev_counts[:, 1], prev_counts[:, 2])
    mu_c, var_c = _beta_moments_vec(cur_counts[:, 1], cur_counts[:, 2])
    diff = mu_c - mu_p
    denom = np.sqrt(var_p + var_c)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(denom == 0.0, np.where(diff != 0.0, np.inf, 0.0),
                       np.abs(diff) / denom)
    return out


def _beta_moments_vec(
    k_pos: np.ndarray, k_neg: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vector form of :func:`repro.core.significance.beta_moments`."""
    total = k_pos + k_neg
    mean = (k_pos + 1.0) / (total + 2.0)
    variance = (
        (k_pos + 1.0) * (k_neg + 1.0) / ((total + 2.0) ** 2 * (total + 3.0))
    )
    return mean, variance
