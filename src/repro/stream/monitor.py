"""Windowed re-mining and drift tracking over a live stream.

:class:`DivergenceMonitor` is the subsystem's hub: batches of encoded
rows plus outcomes go in (:meth:`DivergenceMonitor.ingest`), and every
window the policy completes is materialized from the
:class:`~repro.stream.ingest.StreamBuffer`, re-mined through the
existing bitset engine behind a :class:`~repro.fpm.cache.MiningCache`,
wrapped in the standard
:class:`~repro.core.result.PatternDivergenceResult`, aligned with its
predecessor by canonical itemset key, and scored for drift
(:mod:`repro.stream.drift`). The monitor keeps per-itemset divergence
time series across windows and an append-only alert log.

All public methods are safe to call from multiple threads (the app
server hands one monitor to all its worker threads); mining runs under
the monitor lock so windows are processed exactly once and in order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.outcomes import outcome_channels
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError
from repro.fpm.cache import MiningCache
from repro.fpm.transactions import ItemCatalog
from repro.obs import get_registry, span
from repro.resilience import checkpoint
from repro.stream.drift import DriftAlert, DriftConfig, score_drift
from repro.stream.ingest import StreamBuffer
from repro.stream.window import SlidingWindows, Window, WindowPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store import PatternStore


@dataclass
class WindowStats:
    """Summary of one mined window, kept for the full monitor lifetime.

    ``result`` holds the full divergence table only for the most recent
    windows (``DivergenceMonitor.keep_results``); older windows keep the
    summary fields and drop the table to bound memory.
    """

    index: int
    start: int
    stop: int
    n_patterns: int
    global_rate: float
    top: list[tuple[str, float]] = field(default_factory=list)
    result: PatternDivergenceResult | None = None


class DivergenceMonitor:
    """Incremental divergence monitoring of a labeled prediction stream.

    Parameters
    ----------
    catalog:
        Item catalog the streamed rows are encoded against.
    metric:
        Name recorded on each window's result (the outcome semantics are
        carried by the ingested outcome arrays themselves).
    window / step:
        Window policy: ``step`` defaults to ``window`` (tumbling); pass
        ``step < window`` for sliding overlap. A pre-built
        :class:`~repro.stream.window.WindowPolicy` may be passed as
        ``policy`` instead.
    min_support / algorithm / max_length / n_workers:
        Mining parameters, identical in meaning to
        :meth:`~repro.core.divergence.DivergenceExplorer.explore`
        (``n_workers`` routes window re-mining through the row-sharded
        engine; results are bit-identical to serial runs).
    drift:
        Alert thresholds (:class:`~repro.stream.drift.DriftConfig`).
    mining_cache:
        Cache for window mining runs; a small private cache by default.
    keep_results:
        Number of trailing windows whose full divergence tables are
        retained (at least 2 — drift needs the previous window).
    store:
        Optional :class:`~repro.store.PatternStore`: every mined
        window's pattern rows and fired alerts are journaled into it
        durably, and alerted patterns get corrective-item suggestions
        attached — so the alert history survives process restarts (see
        ``docs/patterns.md``).
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        metric: str = "stream",
        window: int = 512,
        step: int | None = None,
        min_support: float = 0.1,
        algorithm: str = "bitset",
        max_length: int | None = None,
        drift: DriftConfig | None = None,
        policy: WindowPolicy | None = None,
        mining_cache: MiningCache | None = None,
        keep_results: int = 4,
        n_workers: int | None = None,
        store: "PatternStore | None" = None,
    ) -> None:
        self.catalog = catalog
        self.metric = metric
        self.policy = policy if policy is not None else SlidingWindows(window, step)
        self.min_support = float(min_support)
        self.algorithm = algorithm
        self.max_length = max_length
        self.n_workers = n_workers
        self.drift_config = drift or DriftConfig()
        self.mining_cache = (
            mining_cache if mining_cache is not None else MiningCache(max_entries=8)
        )
        self.keep_results = max(2, int(keep_results))
        self.store = store
        self.buffer = StreamBuffer(catalog, n_channels=2)
        self.windows: list[WindowStats] = []
        self.alerts: list[DriftAlert] = []
        # key -> [(window_index, divergence), ...] for every itemset ever
        # frequent in some window; alignment is by canonical key.
        self.series: dict[frozenset[int], list[tuple[int, float]]] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------

    def ingest(
        self,
        matrix: np.ndarray,
        outcome: np.ndarray | None = None,
        channels: np.ndarray | None = None,
    ) -> list[DriftAlert]:
        """Append one batch and mine any windows it completes.

        ``outcome`` is the encoded ``{TRUE, FALSE, BOTTOM}`` outcome
        array of the batch (one value per row), converted to the one-hot
        ``(T, F)`` channels of Algorithm 1; pass pre-built ``channels``
        instead to skip the conversion. Returns the drift alerts fired
        by the newly completed windows (also appended to
        :attr:`alerts`).
        """
        if (outcome is None) == (channels is None):
            raise ReproError("pass exactly one of outcome= or channels=")
        if channels is None:
            channels = outcome_channels(np.asarray(outcome))
        started = time.perf_counter()
        with self._lock:
            self.buffer.append(matrix, channels)
            new_alerts = self._process()
        get_registry().histogram("stream.ingest.seconds").observe(
            time.perf_counter() - started
        )
        return new_alerts

    def process_pending(self) -> list[DriftAlert]:
        """Mine any complete-but-unmined windows (no new rows)."""
        with self._lock:
            return self._process()

    def close(self) -> None:
        """Release mining resources held on the monitor's behalf.

        Shuts down the shared row-sharding worker pools when this
        monitor mined through them (``n_workers`` unset serial runs hold
        none). Pools are process-global and rebuilt transparently on
        next use, so closing one monitor is safe alongside others; it
        just stops *this* owner from keeping forked children alive
        after teardown. Idempotent.
        """
        if self.n_workers is None or self.n_workers == 1:
            return
        from repro.fpm.sharded import shutdown_pools

        shutdown_pools()

    def __enter__(self) -> "DivergenceMonitor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _process(self) -> list[DriftAlert]:
        """Mine every newly complete window, in order. Lock held."""
        new_alerts: list[DriftAlert] = []
        registry = get_registry()
        for window in self.policy.windows_from(
            len(self.windows), self.buffer.n_rows
        ):
            checkpoint("stream.window")
            stats = self._mine_window(window)
            previous = self.windows[-1] if self.windows else None
            self.windows.append(stats)
            registry.counter("stream.windows").inc()
            fired: list[DriftAlert] = []
            if previous is not None and previous.result is not None:
                fired = score_drift(
                    previous.result,
                    stats.result,
                    window.index,
                    self.drift_config,
                )
                if fired:
                    self.alerts.extend(fired)
                    new_alerts.extend(fired)
                    registry.counter("stream.alerts").inc(len(fired))
            if self.store is not None:
                self._journal(window.index, stats.result, fired)
            self._trim_results()
        return new_alerts

    def _journal(
        self,
        window_index: int,
        result: PatternDivergenceResult,
        fired: list[DriftAlert],
    ) -> None:
        """Persist one window into the pattern store. Lock held.

        Alerted patterns additionally get corrective-item suggestions
        attached: the items whose removal most reduces the pattern's
        divergence in the current window (the paper's corrective-item
        search, restricted to the alerted subgroups).
        """
        self.store.record_window(
            window_index,
            (
                (
                    result.key_of(r.itemset),
                    str(r.itemset),
                    r.divergence,
                    r.support,
                    r.t_signed,
                )
                for r in result.records()
            ),
            fired,
        )
        alerted = {a.key for a in fired if a.key is not None}
        if not alerted:
            return
        from repro.core.corrective import find_corrective_items

        for corrective in find_corrective_items(result, k=16):
            base_key = result.key_of(corrective.base)
            if base_key in alerted:
                self.store.attach_suggestions(
                    base_key, [str(corrective.item)]
                )

    def _mine_window(self, window: Window) -> WindowStats:
        """Materialize, mine and summarize one window."""
        with span("stream.window.mine"):
            dataset = self.buffer.window_dataset(window.start, window.stop)
            frequent = self.mining_cache.mine(
                dataset,
                self.min_support,
                algorithm=self.algorithm,
                max_length=self.max_length,
                n_workers=self.n_workers,
            )
        result = PatternDivergenceResult(
            frequent, self.catalog, self.metric, self.min_support
        )
        for key, divergence in result.divergence_map.items():
            if len(key) == 0:
                continue
            self.series.setdefault(key, []).append((window.index, divergence))
        top = [
            (str(r.itemset), r.divergence)
            for r in result.top_k(self.drift_config.top_k)
        ]
        return WindowStats(
            index=window.index,
            start=window.start,
            stop=window.stop,
            n_patterns=len(result) - 1,
            global_rate=result.global_rate,
            top=top,
            result=result,
        )

    def _trim_results(self) -> None:
        """Drop full divergence tables beyond the retention horizon."""
        for stats in self.windows[: -self.keep_results]:
            stats.result = None

    # ------------------------------------------------------------------

    def series_of(self, key: frozenset[int]) -> list[tuple[int, float]]:
        """Divergence time series ``[(window_index, Δ), ...]`` of a key."""
        with self._lock:
            return list(self.series.get(frozenset(key), []))

    def alerts_snapshot(self) -> list[DriftAlert]:
        """Consistent copy of the alert log, taken under the lock.

        Readers must use this instead of iterating :attr:`alerts`
        directly: a concurrent ingest appends to the list mid-read, so
        an unsynchronized serialization can see a length that no longer
        matches the entries it walked.
        """
        with self._lock:
            return list(self.alerts)

    def latest(self) -> WindowStats | None:
        """The most recently mined window, or ``None``."""
        with self._lock:
            return self.windows[-1] if self.windows else None

    def status(self) -> dict:
        """JSON-ready snapshot of the monitor's state."""
        with self._lock:
            latest = self.windows[-1] if self.windows else None
            return {
                "rows_ingested": self.buffer.n_rows,
                "batches_ingested": self.buffer.batches,
                "windows_mined": len(self.windows),
                "alerts_fired": len(self.alerts),
                "tracked_itemsets": len(self.series),
                "config": {
                    "metric": self.metric,
                    "window": getattr(self.policy, "size", None),
                    "step": getattr(self.policy, "step", None),
                    "min_support": self.min_support,
                    "algorithm": self.algorithm,
                    "min_delta": self.drift_config.min_delta,
                    "min_t": self.drift_config.min_t,
                    "churn_threshold": self.drift_config.churn_threshold,
                    "top_k": self.drift_config.top_k,
                },
                "latest_window": None
                if latest is None
                else {
                    "index": latest.index,
                    "start": latest.start,
                    "stop": latest.stop,
                    "n_patterns": latest.n_patterns,
                    "global_rate": latest.global_rate,
                    "top": [
                        {"itemset": name, "divergence": div}
                        for name, div in latest.top
                    ],
                },
            }
