"""Append-only ingestion buffer for streaming divergence analysis.

:class:`StreamBuffer` accepts batches of dictionary-encoded rows plus
their outcome channels and maintains the vertical packed-bitmap
representation of :class:`~repro.fpm.transactions.TransactionDataset`
*incrementally*: each append packs only the batch's bits at the current
bit offset (via :func:`~repro.fpm.transactions.append_packed_bits`) into
capacity buffers that grow in amortized-doubling chunks. Appending a
batch therefore costs ``O(batch)`` regardless of how many rows have
accumulated, where rebuilding a ``TransactionDataset`` from scratch
costs ``O(total)`` — the difference ``benchmarks/bench_stream_ingest.py``
measures.

Windows over the buffer materialize as real ``TransactionDataset``
objects through :meth:`StreamBuffer.window_dataset`, with the window's
packed bitmaps sliced out of the maintained buffers
(:func:`~repro.fpm.transactions.slice_packed_bits`), so the downstream
miners, caches and divergence analytics run unchanged on live data —
including the row-sharded parallel engine (:mod:`repro.fpm.sharded`),
which re-slices a window's packed bitmaps into 64-aligned shards with
the same primitive when the monitor is configured with ``n_workers``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MiningError
from repro.fpm.transactions import (
    ItemCatalog,
    TransactionDataset,
    append_packed_bits,
    dense_item_rows,
    slice_packed_bits,
)
from repro.obs import get_registry
from repro.resilience import checkpoint


class StreamBuffer:
    """Append-only row store with incrementally packed coverage bitmaps.

    Parameters
    ----------
    catalog:
        The item catalog all appended rows are encoded against. Fixed
        for the lifetime of the buffer (streaming does not re-learn the
        schema).
    n_channels:
        Width of the outcome channel matrix (2 for the one-hot ``T``/
        ``F`` channels of Algorithm 1).
    initial_capacity:
        Starting row capacity of the backing buffers; grows by doubling.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        n_channels: int = 2,
        initial_capacity: int = 1024,
    ) -> None:
        if n_channels < 0:
            raise MiningError(f"n_channels must be >= 0, got {n_channels}")
        self.catalog = catalog
        self.n_channels = int(n_channels)
        self._n_rows = 0
        self.batches = 0
        cap = max(8, int(initial_capacity))
        n_attrs = len(catalog.attributes)
        self._matrix = np.zeros((cap, n_attrs), dtype=np.int32)
        self._channels = np.zeros((cap, self.n_channels), dtype=np.int64)
        cap_bytes = (cap + 7) // 8
        self._packed_items = np.zeros((catalog.n_items, cap_bytes), np.uint8)
        self._packed_channels = np.zeros((self.n_channels, cap_bytes), np.uint8)
        # Channels stay packable only while every value is 0/1; a
        # non-binary batch permanently drops the packed channel path
        # (windows then fall back to the miners' gather path).
        self._channels_binary = True

    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Rows ingested so far."""
        return self._n_rows

    @property
    def capacity(self) -> int:
        """Current row capacity of the backing buffers."""
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """View of the ingested ``(n_rows, n_attrs)`` code matrix."""
        return self._matrix[: self._n_rows]

    @property
    def channels(self) -> np.ndarray:
        """View of the ingested ``(n_rows, n_channels)`` channel matrix."""
        return self._channels[: self._n_rows]

    @property
    def channels_binary(self) -> bool:
        """Whether every ingested channel value has been 0/1."""
        return self._channels_binary

    def __len__(self) -> int:
        return self._n_rows

    # ------------------------------------------------------------------

    def append(self, matrix: np.ndarray, channels: np.ndarray) -> int:
        """Append a batch of rows; returns the new total row count.

        ``matrix`` is ``(b, n_attrs)`` dictionary-encoded codes and
        ``channels`` the matching ``(b, n_channels)`` outcome channels.
        Cost is proportional to the batch: the packed bitmaps receive
        only the batch's bits, at the current bit offset.
        """
        checkpoint("stream.append")
        mat = np.asarray(matrix)
        if mat.ndim != 2 or mat.shape[1] != len(self.catalog.attributes):
            raise MiningError(
                f"batch matrix must be (rows, {len(self.catalog.attributes)}), "
                f"got {mat.shape}"
            )
        ch = np.asarray(channels)
        if ch.ndim != 2 or ch.shape[0] != mat.shape[0] or ch.shape[1] != self.n_channels:
            raise MiningError(
                f"batch channels must be ({mat.shape[0]}, {self.n_channels}), "
                f"got {ch.shape}"
            )
        for j, m in enumerate(self.catalog.cardinalities):
            if mat.shape[0] and (mat[:, j].min() < 0 or mat[:, j].max() >= m):
                raise MiningError(f"codes out of range in column {j}")
        b = mat.shape[0]
        if b == 0:
            return self._n_rows
        old = self._n_rows
        self._reserve(old + b)
        self._matrix[old : old + b] = mat
        self._channels[old : old + b] = ch

        item_rows = mat.astype(np.int32) + self.catalog.offsets[:-1].astype(
            np.int32
        )
        append_packed_bits(
            self._packed_items, old, dense_item_rows(item_rows, self.catalog.n_items)
        )
        if self._channels_binary:
            if bool(((ch == 0) | (ch == 1)).all()):
                append_packed_bits(
                    self._packed_channels, old, ch.T.astype(bool)
                )
            else:
                self._channels_binary = False
        self._n_rows = old + b
        self.batches += 1
        registry = get_registry()
        registry.counter("stream.batches").inc()
        registry.counter("stream.rows").inc(b)
        registry.gauge("stream.buffer_rows").set(float(self._n_rows))
        return self._n_rows

    def _reserve(self, n_rows: int) -> None:
        """Grow the backing buffers to hold ``n_rows`` (doubling)."""
        cap = self.capacity
        if n_rows <= cap:
            return
        while cap < n_rows:
            cap *= 2
        matrix = np.zeros((cap, self._matrix.shape[1]), dtype=np.int32)
        matrix[: self._n_rows] = self._matrix[: self._n_rows]
        self._matrix = matrix
        channels = np.zeros((cap, self.n_channels), dtype=np.int64)
        channels[: self._n_rows] = self._channels[: self._n_rows]
        self._channels = channels
        cap_bytes = (cap + 7) // 8
        used_bytes = (self._n_rows + 7) // 8
        packed = np.zeros((self.catalog.n_items, cap_bytes), np.uint8)
        packed[:, :used_bytes] = self._packed_items[:, :used_bytes]
        self._packed_items = packed
        packed_ch = np.zeros((self.n_channels, cap_bytes), np.uint8)
        packed_ch[:, :used_bytes] = self._packed_channels[:, :used_bytes]
        self._packed_channels = packed_ch
        get_registry().counter("stream.buffer_growths").inc()

    # ------------------------------------------------------------------

    def window_dataset(self, start: int, stop: int) -> TransactionDataset:
        """Materialize rows ``[start, stop)`` as a ``TransactionDataset``.

        The window's packed item (and, for binary channels, channel)
        bitmaps are sliced out of the incrementally maintained buffers
        and installed via
        :meth:`~repro.fpm.transactions.TransactionDataset.from_packed`,
        so the bitset miner never re-packs window rows.
        """
        if not 0 <= start < stop <= self._n_rows:
            raise MiningError(
                f"window [{start}, {stop}) out of range for {self._n_rows} rows"
            )
        packed_items = slice_packed_bits(self._packed_items, start, stop)
        packed_channels = (
            slice_packed_bits(self._packed_channels, start, stop)
            if self._channels_binary and self.n_channels
            else None
        )
        return TransactionDataset.from_packed(
            self._matrix[start:stop],
            self.catalog,
            self._channels[start:stop],
            packed_items=packed_items,
            packed_channels=packed_channels,
        )

    def dataset(self) -> TransactionDataset:
        """The whole buffer as a ``TransactionDataset``."""
        return self.window_dataset(0, self._n_rows)
