"""Process-wide metrics: counters, gauges and latency histograms.

The registry is the single source of runtime truth for the serving
stack: mining backends, the mining/result caches, the lattice kernels
and the HTTP endpoints all record into the process-wide instance
returned by :func:`get_registry`. Everything here is dependency-free
and thread-safe — instruments take a per-instrument lock on update,
and :meth:`MetricsRegistry.snapshot` produces a consistent, JSON-ready
view that ``/api/metrics`` serves verbatim.

Histograms keep exact count/sum/min/max plus a bounded reservoir of
the most recent observations, from which the snapshot derives p50/p90/
p99 — constant memory no matter how much traffic flows through.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]


class Counter:
    """Monotonically increasing counter (int or float increments)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (cache sizes, queue depths)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency/size distribution with exact totals and a reservoir.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    percentiles are computed over the last ``reservoir`` observations,
    which keeps memory constant under unbounded traffic while staying
    faithful to the recent distribution (what a latency dashboard
    wants).
    """

    __slots__ = ("_lock", "count", "total", "_min", "_max", "_recent")

    def __init__(self, reservoir: int = 1024) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._recent: deque[float] = deque(maxlen=reservoir)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._recent.append(value)

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        """Nearest-rank percentile of a non-empty sorted list."""
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def snapshot(self) -> dict[str, float | int | None]:
        """Consistent JSON-ready summary of the distribution."""
        with self._lock:
            count = self.count
            total = self.total
            lo, hi = self._min, self._max
            recent = sorted(self._recent)
        out: dict[str, float | int | None] = {
            "count": count,
            "sum": total,
            "mean": total / count if count else None,
            "min": lo,
            "max": hi,
        }
        if recent:
            out["p50"] = self._percentile(recent, 0.50)
            out["p90"] = self._percentile(recent, 0.90)
            out["p99"] = self._percentile(recent, 0.99)
        else:
            out["p50"] = out["p90"] = out["p99"] = None
        return out


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted atomically.

    ``counter``/``gauge``/``histogram`` are get-or-create and safe to
    call from any thread; the instruments themselves serialize their
    updates, so the registry lock only guards the name tables.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create ------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str, reservoir: int = 1024) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(reservoir)
            return instrument

    # -- views ---------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """All instruments as one nested, JSON-serializable dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests, benchmark isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented layer records into."""
    return _REGISTRY
