"""Per-stage profile tables derived from recorded spans.

:func:`span_rows` turns a registry snapshot into sortable row dicts
(one per span: calls, total/self/mean/max milliseconds) that benchmark
scripts attach to their JSON payloads; :func:`render_profile` formats
the same rows as an aligned text table for the CLI's ``--profile``
flag. Both are read-only views — profiling never perturbs the
registry.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["span_rows", "render_profile"]

_SPAN_PREFIX = "span."


def span_rows(
    snapshot: dict | None = None, registry: MetricsRegistry | None = None
) -> list[dict[str, object]]:
    """One row per recorded span, sorted by total time (descending).

    Accepts an existing :meth:`MetricsRegistry.snapshot` dict or takes
    a fresh one from ``registry`` (the process registry by default).
    """
    if snapshot is None:
        snapshot = (registry or get_registry()).snapshot()
    counters = snapshot.get("counters", {})
    rows = []
    for name, hist in snapshot.get("histograms", {}).items():
        if not name.startswith(_SPAN_PREFIX) or not hist.get("count"):
            continue
        short = name[len(_SPAN_PREFIX):]
        total = float(hist["sum"])
        child = float(counters.get(f"{name}.child_seconds", 0.0))
        rows.append(
            {
                "span": short,
                "calls": int(hist["count"]),
                "total_ms": round(total * 1e3, 3),
                "self_ms": round(max(0.0, total - child) * 1e3, 3),
                "mean_ms": round(total / hist["count"] * 1e3, 3),
                "max_ms": round(float(hist["max"]) * 1e3, 3),
            }
        )
    rows.sort(key=lambda r: (-r["total_ms"], r["span"]))
    return rows


def render_profile(
    snapshot: dict | None = None, registry: MetricsRegistry | None = None
) -> str:
    """Aligned text table of the span profile (empty string if none)."""
    rows = span_rows(snapshot, registry)
    if not rows:
        return ""
    headers = ["span", "calls", "total_ms", "self_ms", "mean_ms", "max_ms"]
    cells = [[str(r[h]) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells))
        for i, h in enumerate(headers)
    ]
    def fmt(values: list[str]) -> str:
        # Left-align the span name, right-align the numeric columns.
        first = values[0].ljust(widths[0])
        rest = [v.rjust(w) for v, w in zip(values[1:], widths[1:])]
        return "  ".join([first, *rest])

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)
