"""Dependency-free observability: metrics, spans, profile tables.

The serving stack's shared instrumentation layer (see
``docs/observability.md``): a process-wide :class:`MetricsRegistry`
with counters, gauges and latency histograms; :func:`span` for nested
wall-clock timing of hot stages; and profile-table helpers the CLI's
``--profile`` flag and the benchmark scripts build on. Everything is
stdlib-only and thread-safe, so the mining backends, caches, lattice
kernels and HTTP endpoints can all record into one place without new
dependencies or lock-ordering concerns.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.profile import render_profile, span_rows
from repro.obs.spans import current_span, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_span",
    "get_registry",
    "render_profile",
    "span",
    "span_rows",
]
