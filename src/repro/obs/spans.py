"""Nested wall-clock spans over the metrics registry.

``span(name)`` times a stage and records it into the registry as the
histogram ``span.<name>`` (seconds). Spans nest: while a span is open,
any span entered on the same thread becomes its child, and the parent
accumulates the child time into the counter
``span.<name>.child_seconds`` — the profile table uses it to show
*self* time next to total time. A span doubles as a decorator::

    with span("fpm.mine.bitset"):
        ...                       # timed block

    @span("kernel.prune_redundant")
    def prune_redundant(...):     # every call timed
        ...

Per-span counters ride along via :meth:`span.count`, namespaced under
the span: ``span.count("itemsets", 123)`` increments
``span.<name>.itemsets``.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, TypeVar

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["span", "current_span"]

F = TypeVar("F", bound=Callable)

_local = threading.local()


def _stack() -> list["span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span() -> "span | None":
    """The innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class span:
    """Context manager / decorator timing one named stage.

    Instances are single-use as context managers (the decorator form
    opens a fresh span per call); create one per ``with`` block.
    """

    __slots__ = ("name", "_registry", "_start", "child_seconds")

    def __init__(self, name: str, registry: MetricsRegistry | None = None):
        self.name = name
        self._registry = registry
        self._start: float | None = None
        self.child_seconds = 0.0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def count(self, key: str, amount: float = 1) -> None:
        """Increment the per-span counter ``span.<name>.<key>``."""
        self.registry.counter(f"span.{self.name}.{key}").inc(amount)

    # -- context manager ----------------------------------------------

    def __enter__(self) -> "span":
        self._start = time.perf_counter()
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        registry = self.registry
        registry.histogram(f"span.{self.name}").observe(elapsed)
        if self.child_seconds:
            registry.counter(f"span.{self.name}.child_seconds").inc(
                self.child_seconds
            )
        if stack:
            stack[-1].child_seconds += elapsed
        return False

    # -- decorator -----------------------------------------------------

    def __call__(self, fn: F) -> F:
        name, registry = self.name, self._registry

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(name, registry):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]
