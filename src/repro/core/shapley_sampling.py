"""Monte-Carlo approximation of local Shapley contributions.

The exact computation (Def. 4.1) enumerates all ``2^{|I|-1}`` subsets
per item. Patterns are bounded by the attribute count, so exactness is
fine for the paper's datasets (≤ 21 attributes), but wide schemas make
the exact sum expensive. This module implements the standard
permutation-sampling estimator: draw random orderings of the pattern's
items and average each item's marginal contribution over its prefix.

The estimator is unbiased; with ``n_samples`` permutations the standard
error of each contribution shrinks as ``1/sqrt(n_samples)``. Tests
verify convergence to the exact values.
"""

from __future__ import annotations

import numpy as np

from repro.core.items import Item, Itemset
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError


def shapley_contributions_sampled(
    result: PatternDivergenceResult,
    itemset: Itemset,
    n_samples: int = 200,
    seed: int = 0,
) -> dict[Item, float]:
    """Permutation-sampling estimate of ``Δ(α|I)`` for every ``α ∈ I``.

    Parameters
    ----------
    result:
        A completed exploration containing ``itemset`` (and hence all of
        its subsets, by downward closure).
    itemset:
        The pattern to explain.
    n_samples:
        Number of random permutations. Exact enumeration is used
        automatically when it is cheaper (``|I|! <= n_samples``).
    seed:
        RNG seed for reproducibility.
    """
    if n_samples < 1:
        raise ReproError(f"n_samples must be >= 1, got {n_samples}")
    key = result.key_of(itemset)
    if key not in result.frequent:
        raise ReproError(
            f"pattern ({itemset}) is not frequent at support {result.min_support}"
        )
    ids = sorted(key)
    n = len(ids)
    if n == 0:
        return {}
    if n <= 2 or _factorial(n) <= n_samples:
        # Exact is cheaper: fall back to the closed form.
        from repro.core.shapley import shapley_contributions

        return shapley_contributions(result, itemset)

    rng = np.random.default_rng(seed)
    totals = {item_id: 0.0 for item_id in ids}
    for _ in range(n_samples):
        order = rng.permutation(n)
        prefix: set[int] = set()
        prev_div = 0.0  # divergence of the empty pattern
        for position in order:
            item_id = ids[position]
            prefix.add(item_id)
            current = result.divergence_or_zero(frozenset(prefix))
            totals[item_id] += current - prev_div
            prev_div = current
    return {
        result.item_of(item_id): total / n_samples
        for item_id, total in totals.items()
    }


def _factorial(n: int) -> int:
    out = 1
    for i in range(2, n + 1):
        out *= i
    return out
