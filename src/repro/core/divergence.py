"""The DivExplorer algorithm (paper Sec. 5, Algorithm 1).

:class:`DivergenceExplorer` wires everything together: it encodes the
outcome function as one-hot channels, runs an outcome-augmented frequent
pattern miner (the packed-bitmap ``"bitset"`` backend by default;
FP-growth, Apriori, ECLAT and brute force optionally) and returns a
:class:`~repro.core.result.PatternDivergenceResult` with the divergence
of *all* frequent itemsets. The exploration is sound and complete up to
the support threshold (Thm. 5.1), which is what enables global
divergence and corrective-item analysis downstream.

Mining runs are memoized per explorer through a
:class:`~repro.fpm.cache.MiningCache`, so repeated explorations of the
same configuration (Shapley sweeps, pruning sweeps, the app server) pay
the mining cost once; a run at support ``s`` also serves any later
request at ``s' >= s`` by filtering.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.outcomes import outcome_channels, outcome_metric
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError, SchemaError
from repro.fpm.cache import MiningCache
from repro.fpm.miner import mine_frequent
from repro.fpm.transactions import ItemCatalog, TransactionDataset
from repro.resilience import CancelToken, Deadline, cancel_scope, checkpoint
from repro.tabular.table import Table


class DivergenceExplorer:
    """Explore classifier divergence over all frequent data subgroups.

    Parameters
    ----------
    table:
        The discretized dataset. Every analysis attribute must be
        categorical; use :func:`repro.tabular.discretize_table` first if
        the data has continuous columns.
    true_column:
        Name of the ground-truth column (boolean or 0/1 valued).
    pred_column:
        Name of the prediction column. May be omitted when only
        ground-truth rates (metric ``"posr"``) are analyzed.
    attributes:
        The analysis attributes. Defaults to every categorical column
        except the class columns.
    mining_cache:
        Cache for completed mining runs; a fresh private
        :class:`~repro.fpm.cache.MiningCache` by default. Pass a shared
        instance to pool cached runs across explorers of the same data.
    n_workers:
        Default worker count for mining runs: ``None``/``1`` serial,
        ``0`` auto (sharded only for large datasets), ``>= 2`` row-
        sharded across that many processes (:mod:`repro.fpm.sharded`).
        Sharded results are bit-identical to serial ones, so this is
        purely a performance knob. Overridable per :meth:`explore` call.
    """

    def __init__(
        self,
        table: Table,
        true_column: str,
        pred_column: str | None = None,
        attributes: Sequence[str] | None = None,
        mining_cache: MiningCache | None = None,
        n_workers: int | None = None,
    ) -> None:
        self.table = table
        self.true_column = true_column
        self.pred_column = pred_column
        self.n_workers = n_workers
        self.mining_cache = mining_cache if mining_cache is not None else MiningCache()
        # TransactionDataset per metric, so the packed bitmaps and the
        # fingerprint survive across explore() calls.
        self._datasets: dict[str, TransactionDataset] = {}
        # Progressive-sampling state: one block permutation per seed and
        # one sampled dataset per (metric, rows, seed), so repeated
        # sampled requests (server auto mode, refinement rounds) reuse
        # the gathered bitmaps and their mining-cache fingerprints.
        self._sample_designs: dict[tuple[int, int | None], object] = {}
        self._sampled_datasets: dict[
            tuple[str, int, int | None], TransactionDataset
        ] = {}
        self._truth = _class_array(table, true_column)
        self._pred = _class_array(table, pred_column) if pred_column else None

        reserved = {true_column, pred_column} - {None}
        if attributes is None:
            attributes = [
                n for n in table.categorical_names if n not in reserved
            ]
        else:
            attributes = list(attributes)
            overlap = reserved & set(attributes)
            if overlap:
                raise SchemaError(
                    f"class columns cannot be analysis attributes: {sorted(overlap)}"
                )
        if not attributes:
            raise SchemaError("no analysis attributes available")
        bad = [n for n in attributes if not table.column(n).is_categorical]
        if bad:
            raise SchemaError(
                f"attributes must be categorical (discretize first): {bad}"
            )
        self.attributes = attributes
        self.catalog = ItemCatalog(
            attributes, [table.categorical(n).categories for n in attributes]
        )
        self._matrix = table.encoded_matrix(attributes)

    # ------------------------------------------------------------------

    def explore(
        self,
        metric: str = "fpr",
        min_support: float = 0.1,
        algorithm: str = "bitset",
        max_length: int | None = None,
        use_cache: bool = True,
        deadline: Deadline | float | None = None,
        cancel_token: CancelToken | None = None,
        n_workers: int | None = None,
        sample: float | int | str | None = None,
        confidence: float = 0.95,
        sample_seed: int | None = 0,
    ) -> PatternDivergenceResult:
        """Run Algorithm 1 and return the full divergence table.

        Parameters
        ----------
        metric:
            One of the built-in outcome metrics
            (:data:`repro.core.outcomes.OUTCOME_METRICS`), e.g. ``"fpr"``,
            ``"fnr"``, ``"error"``, ``"accuracy"``, ``"posr"``.
        min_support:
            The support threshold ``s`` — the single algorithm parameter.
        algorithm:
            FPM backend: ``"bitset"`` (default), ``"fpgrowth"``,
            ``"apriori"``, ``"eclat"`` or ``"bruteforce"``. All produce
            identical results; they differ only in speed.
        max_length:
            Optional cap on itemset length (all lengths by default).
        use_cache:
            Serve repeated configurations from :attr:`mining_cache`
            (including monotone reuse: a cached run at support ``s``
            answers any ``s' >= s``). Disable to force a fresh mining
            run, e.g. when benchmarking.
        deadline:
            Optional wall-clock budget (seconds or
            :class:`~repro.resilience.Deadline`). The mining loops
            checkpoint cooperatively and raise
            :class:`~repro.resilience.DeadlineExceeded` when it
            expires mid-exploration. Adds to (never replaces) any
            ambient :func:`~repro.resilience.cancel_scope`.
        cancel_token:
            Optional :class:`~repro.resilience.CancelToken` another
            thread can trigger to abort the exploration cooperatively
            (raises :class:`~repro.resilience.OperationCancelled`).
        n_workers:
            Per-call override of the explorer's default worker count
            (``None`` keeps the default; ``1`` forces serial, ``0``
            auto, ``>= 2`` row-sharded). Results are identical either
            way — cached runs are shared across worker counts.
        sample:
            Mine a seeded row sample instead of the full dataset: a
            fraction in ``(0, 1)``, an integral row count ``> 1``, or
            ``"auto"`` (:func:`repro.approx.auto_sample_rows`). Returns
            an :class:`~repro.approx.ApproxResult` carrying credible
            intervals and rank-stability flags; a sample covering every
            row falls through to the (bit-identical) exact path.
        confidence:
            Credible-interval mass for sampled results, in ``(0, 1)``.
            Ignored on the exact path.
        sample_seed:
            Seed of the sample draw (shared RNG convention with the
            synthetic dataset generators). Same seed + larger sample =
            nested draw, which is what the refinement driver exploits.
        """
        workers = n_workers if n_workers is not None else self.n_workers
        with cancel_scope(deadline=deadline, token=cancel_token):
            checkpoint("explore")
            dataset = self._dataset_for(metric)
            if sample is not None:
                sampled = self._sampled_dataset(
                    metric, dataset, sample, sample_seed
                )
                if sampled is not dataset:
                    return self._explore_sampled(
                        sampled,
                        dataset.n_rows,
                        metric,
                        min_support,
                        algorithm,
                        max_length,
                        use_cache,
                        workers,
                        confidence,
                        sample_seed,
                    )
            if use_cache:
                frequent = self.mining_cache.mine(
                    dataset,
                    min_support,
                    algorithm=algorithm,
                    max_length=max_length,
                    n_workers=workers,
                )
            else:
                frequent = mine_frequent(
                    dataset,
                    min_support,
                    algorithm=algorithm,
                    max_length=max_length,
                    n_workers=workers,
                )
            checkpoint("explore.result")
            return PatternDivergenceResult(
                frequent, self.catalog, metric, min_support
            )

    def _sampled_dataset(
        self,
        metric: str,
        dataset: TransactionDataset,
        sample: float | int | str,
        seed: int | None,
    ) -> TransactionDataset:
        """The sampled dataset for a ``sample=`` spec (cached per round).

        Returns ``dataset`` itself when the resolved sample covers every
        row. Designs and gathered datasets are cached so refinement
        rounds and repeated server requests pay the gather once.
        """
        from repro.approx.sampler import (
            SampleDesign,
            resolve_sample_rows,
            sample_dataset,
        )

        rows = resolve_sample_rows(sample, dataset.n_rows)
        design_key = (dataset.n_rows, seed)
        design = self._sample_designs.get(design_key)
        if design is None:
            design = SampleDesign(dataset.n_rows, seed)
            self._sample_designs[design_key] = design
        actual = design.rows_for(rows)
        if actual >= dataset.n_rows:
            return dataset
        cache_key = (metric, actual, seed)
        sampled = self._sampled_datasets.get(cache_key)
        if sampled is None:
            from repro.obs import span

            with span("approx.sample"):
                sampled = sample_dataset(dataset, design, rows)
            self._sampled_datasets[cache_key] = sampled
        return sampled

    def _explore_sampled(
        self,
        sampled: TransactionDataset,
        total_rows: int,
        metric: str,
        min_support: float,
        algorithm: str,
        max_length: int | None,
        use_cache: bool,
        workers: int | None,
        confidence: float,
        sample_seed: int | None,
    ) -> "ApproxResult":
        """Mine a sampled dataset and wrap it with credible intervals."""
        from repro.approx.engine import ApproxResult
        from repro.obs import get_registry

        if use_cache:
            frequent = self.mining_cache.mine(
                sampled,
                min_support,
                algorithm=algorithm,
                max_length=max_length,
                n_workers=workers,
            )
        else:
            frequent = mine_frequent(
                sampled,
                min_support,
                algorithm=algorithm,
                max_length=max_length,
                n_workers=workers,
            )
        checkpoint("explore.result")
        get_registry().counter("approx.rounds").inc()
        return ApproxResult(
            frequent,
            self.catalog,
            metric,
            min_support,
            total_rows=total_rows,
            confidence=confidence,
            sample_seed=sample_seed,
        )

    def _dataset_for(self, metric: str) -> TransactionDataset:
        """The transaction dataset for ``metric``, reused across calls.

        Reuse keeps the packed bitmaps and the cache fingerprint warm.
        The cached instance is revalidated against freshly computed
        channels, so re-registering a custom metric under the same name
        cannot serve stale outcomes.
        """
        channels = outcome_channels(self.outcome_array(metric))
        dataset = self._datasets.get(metric)
        if dataset is None or not np.array_equal(dataset.channels, channels):
            dataset = TransactionDataset(self._matrix, self.catalog, channels)
            self._datasets[metric] = dataset
        return dataset

    def outcome_array(self, metric: str) -> np.ndarray:
        """Evaluate the named outcome function on every instance."""
        fn = outcome_metric(metric)
        if self._pred is None:
            if metric not in ("posr",):
                raise ReproError(
                    f"metric {metric!r} needs a prediction column; "
                    "only 'posr' works without one"
                )
            pred = self._truth  # unused by posr but required by signature
        else:
            pred = self._pred
        return fn(self._truth, pred)


def _class_array(table: Table, name: str) -> np.ndarray:
    """Extract a boolean class array from a 0/1 or boolean column."""
    col = table.column(name)
    if col.is_continuous:
        values = np.asarray(table.continuous(name).values)
    else:
        values = np.asarray(table.categorical(name).values_as_objects())
    try:
        as_float = values.astype(float)
    except (TypeError, ValueError):
        raise SchemaError(
            f"class column {name!r} must be boolean or 0/1, got {values[:3]!r}"
        ) from None
    uniq = np.unique(as_float)
    if not np.all(np.isin(uniq, [0.0, 1.0])):
        raise SchemaError(
            f"class column {name!r} must be boolean or 0/1, got values {uniq[:5]}"
        )
    return as_float.astype(bool)
