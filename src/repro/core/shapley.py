"""Local item contribution to itemset divergence (paper Def. 4.1).

The contribution of item ``α`` to pattern ``I`` is the exact Shapley
value of ``α`` in the coalition game whose value function is the
divergence of sub-patterns of ``I``:

    Δ(α|I) = Σ_{J ⊆ I\\{α}}  |J|! (|I|-|J|-1)! / |I|!  [Δ(J ∪ α) − Δ(J)]

Every ``J`` in the sum is a subset of a frequent itemset, hence frequent
itself (downward closure), so all terms are available from the complete
exploration — no extra data passes are needed.

:func:`shapley_batch` evaluates many patterns at once: all ``2^n``
subset rows of every pattern are resolved against the columnar lattice
index in one batched lookup (no per-subset frozenset hashing), and the
weighted marginal sums are computed with bitmask arithmetic. The
original per-subset dict walk is retained as
:func:`shapley_contributions_reference`, the oracle the batched kernel
is property-tested against.
"""

from __future__ import annotations

from itertools import combinations
from math import factorial

import numpy as np

from repro.core.items import Item, Itemset
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError
from repro.obs import span


@span("kernel.shapley_batch")
def shapley_batch(
    result: PatternDivergenceResult, itemsets: list[Itemset]
) -> list[dict[Item, float]]:
    """Exact Shapley contributions of many patterns, one shared pass.

    Subset-row resolution is shared across the batch: the padded subset
    keys of every pattern are concatenated and resolved with a single
    index lookup, which is what makes top-k explanation tables and the
    lattice view cheap. Raises ``ReproError`` when any pattern is not
    frequent at the exploration's support threshold.
    """
    index = result.lattice_index()
    div0 = result.divergence_vector(zero_nan=True)

    id_lists: list[list[int]] = []
    blocks: list[np.ndarray] = []
    for itemset in itemsets:
        key = result.key_of(itemset)
        if key not in result.frequent:
            raise ReproError(
                f"pattern ({itemset}) is not frequent at support "
                f"{result.min_support}"
            )
        # Bit b of a subset mask refers to itemset.items[b]; the padded
        # lookup keys are canonicalized by the index, so any id order
        # works here.
        ids = [
            result.catalog.item_id(it.attribute, it.value)
            for it in itemset.items
        ]
        id_lists.append(ids)
        n = len(ids)
        masks = np.arange(1 << n, dtype=np.int64)
        bits = ((masks[:, None] >> np.arange(n, dtype=np.int64)) & 1).astype(
            bool
        )
        vals = np.where(
            bits, np.asarray(ids, dtype=np.uint32)[None, :] + 1, np.uint32(0)
        )
        blocks.append(index.pad_keys(vals))

    if not blocks:
        return []
    rows = index.rows_of_padded(np.concatenate(blocks, axis=0))

    out: list[dict[Item, float]] = []
    offset = 0
    for itemset, ids in zip(itemsets, id_lists):
        n = len(ids)
        size = 1 << n
        sub_rows = rows[offset : offset + size]
        offset += size
        if n == 0:
            out.append({})
            continue
        sub_div = np.where(sub_rows >= 0, div0[sub_rows], 0.0)
        masks = np.arange(size, dtype=np.int64)
        popcounts = ((masks[:, None] >> np.arange(n, dtype=np.int64)) & 1).sum(
            axis=1
        )
        n_fact = factorial(n)
        weights = np.asarray(
            [factorial(j) * factorial(n - j - 1) / n_fact for j in range(n)]
        )
        contributions: dict[Item, float] = {}
        for p, item in enumerate(itemset.items):
            without = masks[(masks >> p) & 1 == 0]
            terms = weights[popcounts[without]] * (
                sub_div[without | (1 << p)] - sub_div[without]
            )
            contributions[item] = float(terms.sum())
        out.append(contributions)
    return out


def shapley_contributions(
    result: PatternDivergenceResult, itemset: Itemset
) -> dict[Item, float]:
    """Exact Shapley contribution of each item of ``itemset``.

    The contributions satisfy efficiency: they sum to ``Δ(itemset)``
    (up to float rounding), because the empty pattern has divergence 0.

    Raises ``ReproError`` when the pattern is not frequent at the
    exploration's support threshold.
    """
    return shapley_batch(result, [itemset])[0]


def shapley_contributions_reference(
    result: PatternDivergenceResult, itemset: Itemset
) -> dict[Item, float]:
    """Dict-walk oracle for :func:`shapley_contributions`.

    One frozenset allocation and divergence-map probe per subset term;
    kept verbatim as the correctness reference for the batched kernel.
    """
    key = result.key_of(itemset)
    if key not in result.frequent:
        raise ReproError(
            f"pattern ({itemset}) is not frequent at support {result.min_support}"
        )
    ids = sorted(key)
    n = len(ids)
    if n == 0:
        return {}
    # Precompute the permutation weights w(|J|) = |J|!(n-|J|-1)!/n!.
    n_fact = factorial(n)
    weights = [factorial(j) * factorial(n - j - 1) / n_fact for j in range(n)]
    contributions: dict[Item, float] = {}
    for alpha in ids:
        rest = [i for i in ids if i != alpha]
        total = 0.0
        for size in range(n):
            w = weights[size]
            for combo in combinations(rest, size):
                j_key = frozenset(combo)
                with_alpha = result.divergence_or_zero(j_key | {alpha})
                without = result.divergence_or_zero(j_key)
                total += w * (with_alpha - without)
        contributions[result.item_of(alpha)] = total
    return contributions


def shapley_efficiency_gap(
    result: PatternDivergenceResult, itemset: Itemset
) -> float:
    """``|Σ_α Δ(α|I) − Δ(I)|`` — zero up to float error by construction.

    Exposed for tests and for callers that want to assert exactness on
    their own patterns.
    """
    contributions = shapley_contributions(result, itemset)
    total = sum(contributions.values())
    return abs(total - result.divergence_or_zero(result.key_of(itemset)))
