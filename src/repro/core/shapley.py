"""Local item contribution to itemset divergence (paper Def. 4.1).

The contribution of item ``α`` to pattern ``I`` is the exact Shapley
value of ``α`` in the coalition game whose value function is the
divergence of sub-patterns of ``I``:

    Δ(α|I) = Σ_{J ⊆ I\\{α}}  |J|! (|I|-|J|-1)! / |I|!  [Δ(J ∪ α) − Δ(J)]

Every ``J`` in the sum is a subset of a frequent itemset, hence frequent
itself (downward closure), so all terms are available from the complete
exploration — no extra data passes are needed.
"""

from __future__ import annotations

from itertools import combinations
from math import factorial

from repro.core.items import Item, Itemset
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError


def shapley_contributions(
    result: PatternDivergenceResult, itemset: Itemset
) -> dict[Item, float]:
    """Exact Shapley contribution of each item of ``itemset``.

    The contributions satisfy efficiency: they sum to ``Δ(itemset)``
    (up to float rounding), because the empty pattern has divergence 0.

    Raises ``ReproError`` when the pattern is not frequent at the
    exploration's support threshold.
    """
    key = result.key_of(itemset)
    if key not in result.frequent:
        raise ReproError(
            f"pattern ({itemset}) is not frequent at support {result.min_support}"
        )
    ids = sorted(key)
    n = len(ids)
    if n == 0:
        return {}
    # Precompute the permutation weights w(|J|) = |J|!(n-|J|-1)!/n!.
    n_fact = factorial(n)
    weights = [factorial(j) * factorial(n - j - 1) / n_fact for j in range(n)]
    contributions: dict[Item, float] = {}
    for alpha in ids:
        rest = [i for i in ids if i != alpha]
        total = 0.0
        for size in range(n):
            w = weights[size]
            for combo in combinations(rest, size):
                j_key = frozenset(combo)
                with_alpha = result.divergence_or_zero(j_key | {alpha})
                without = result.divergence_or_zero(j_key)
                total += w * (with_alpha - without)
        contributions[result.item_of(alpha)] = total
    return contributions


def shapley_efficiency_gap(
    result: PatternDivergenceResult, itemset: Itemset
) -> float:
    """``|Σ_α Δ(α|I) − Δ(I)|`` — zero up to float error by construction.

    Exposed for tests and for callers that want to assert exactness on
    their own patterns.
    """
    contributions = shapley_contributions(result, itemset)
    total = sum(contributions.values())
    return abs(total - result.divergence_or_zero(result.key_of(itemset)))
