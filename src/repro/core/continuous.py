"""Generalized divergence for real-valued outcome functions.

The paper restricts Algorithm 1 to Boolean outcome functions, noting
that the Boolean form is what allows treating classifiers as black
boxes and mining efficiently; extending divergence "to other data
science tasks" is listed as future work (Sec. 7). This module provides
that extension for real-valued per-instance scores (e.g. a regression
residual, a model loss, a probability): the statistic is the *mean*
score, and divergence is the difference between a subgroup's mean and
the global mean.

The same augmented-mining machinery applies — the miners accumulate
arbitrary channel sums, so we carry (Σ score, Σ score²) per itemset and
recover mean, variance and a Welch t-statistic for every frequent
subgroup in a single pass. Scores are carried through the int64
accumulators with the shared overflow-checked encoder
(:mod:`repro.core.fixedpoint`). All downstream analyses that only
consume a divergence table (local Shapley contributions, global
divergence, corrective items, pruning, lattices) work unchanged on the
result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.fixedpoint import SCALE as _SCALE
from repro.core.fixedpoint import encode_weight_channels
from repro.core.items import Itemset
from repro.exceptions import ReproError, SchemaError
from repro.fpm.cache import MiningCache
from repro.fpm.miner import FrequentItemsets, mine_frequent
from repro.fpm.transactions import ItemCatalog, TransactionDataset
from repro.resilience import CancelToken, Deadline, cancel_scope, checkpoint
from repro.tabular.table import Table


@dataclass(frozen=True)
class ContinuousPatternRecord:
    """One subgroup with its mean-score statistics."""

    itemset: Itemset
    support: float
    support_count: int
    mean: float
    variance: float
    divergence: float
    t_statistic: float

    @property
    def length(self) -> int:
        """Number of items in the pattern."""
        return len(self.itemset)


class ContinuousDivergenceExplorer:
    """Divergence of a real-valued score over all frequent subgroups.

    Parameters
    ----------
    table:
        Discretized dataset (analysis attributes categorical).
    scores:
        Per-instance real scores (length ``table.n_rows``).
    attributes:
        Analysis attributes; defaults to all categorical columns.
    mining_cache:
        Cache for completed mining runs; a fresh private
        :class:`~repro.fpm.cache.MiningCache` by default. Pass a shared
        instance to pool cached runs across explorers of the same data.
    n_workers:
        Default worker count for mining runs: ``None``/``1`` serial,
        ``0`` auto, ``>= 2`` row-sharded (:mod:`repro.fpm.sharded`).
        Sharded results are bit-identical to serial ones. Overridable
        per :meth:`explore` call.
    """

    def __init__(
        self,
        table: Table,
        scores: np.ndarray,
        attributes: Sequence[str] | None = None,
        mining_cache: MiningCache | None = None,
        n_workers: int | None = None,
    ) -> None:
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (table.n_rows,):
            raise ReproError(
                f"scores must have length {table.n_rows}, got {scores.shape}"
            )
        if not np.isfinite(scores).all():
            raise ReproError("scores must be finite")
        self.table = table
        self.scores = scores
        self.n_workers = n_workers
        self.mining_cache = (
            mining_cache if mining_cache is not None else MiningCache()
        )
        if attributes is None:
            attributes = table.categorical_names
        attributes = list(attributes)
        if not attributes:
            raise SchemaError("no analysis attributes available")
        bad = [n for n in attributes if not table.column(n).is_categorical]
        if bad:
            raise SchemaError(
                f"attributes must be categorical (discretize first): {bad}"
            )
        self.attributes = attributes
        self.catalog = ItemCatalog(
            attributes, [table.categorical(n).categories for n in attributes]
        )
        self._matrix = table.encoded_matrix(attributes)
        # Built lazily and reused across explore() calls so the packed
        # bitmaps and the mining-cache fingerprint stay warm.
        self._dataset: TransactionDataset | None = None

    def explore(
        self,
        min_support: float = 0.1,
        algorithm: str = "bitset",
        max_length: int | None = None,
        use_cache: bool = True,
        deadline: Deadline | float | None = None,
        cancel_token: CancelToken | None = None,
        n_workers: int | None = None,
    ) -> "ContinuousDivergenceResult":
        """Mine all frequent subgroups and their mean-score divergence.

        Accepts the same plumbing as
        :meth:`repro.core.divergence.DivergenceExplorer.explore`:
        repeated configurations are served from :attr:`mining_cache`
        (monotone support reuse included), ``n_workers`` routes the run
        through the row-sharded engine, and ``deadline`` /
        ``cancel_token`` abort cooperatively mid-mine.
        """
        workers = n_workers if n_workers is not None else self.n_workers
        with cancel_scope(deadline=deadline, token=cancel_token):
            checkpoint("explore")
            dataset = self._dataset_for()
            if use_cache:
                frequent = self.mining_cache.mine(
                    dataset,
                    min_support,
                    algorithm=algorithm,
                    max_length=max_length,
                    n_workers=workers,
                )
            else:
                frequent = mine_frequent(
                    dataset,
                    min_support,
                    algorithm=algorithm,
                    max_length=max_length,
                    n_workers=workers,
                )
            checkpoint("explore.result")
            return ContinuousDivergenceResult(
                frequent, self.catalog, min_support
            )

    def _dataset_for(self) -> TransactionDataset:
        """The transaction dataset with fixed-point score channels."""
        if self._dataset is None:
            channels = encode_weight_channels(self.scores)
            self._dataset = TransactionDataset(
                self._matrix, self.catalog, channels
            )
        return self._dataset


class ContinuousDivergenceResult:
    """Mean-score divergence of all frequent subgroups."""

    def __init__(
        self,
        frequent: FrequentItemsets,
        catalog: ItemCatalog,
        min_support: float,
    ) -> None:
        self.frequent = frequent
        self.catalog = catalog
        self.min_support = min_support
        totals = frequent.totals
        self.n_rows = int(totals[0])
        self.global_mean = totals[1] / _SCALE / self.n_rows
        self._global_var = max(
            totals[2] / _SCALE / self.n_rows - self.global_mean**2, 0.0
        )

    # ------------------------------------------------------------------

    def key_of(self, itemset: Itemset) -> frozenset[int]:
        """Encode a readable itemset to internal ids."""
        return frozenset(
            self.catalog.item_id(it.attribute, it.value) for it in itemset
        )

    def record_for_key(self, key: frozenset[int]) -> ContinuousPatternRecord:
        """Full statistics of one frequent subgroup."""
        counts = self.frequent.counts(key)
        n = int(counts[0])
        mean = counts[1] / _SCALE / n
        variance = max(counts[2] / _SCALE / n - mean**2, 0.0)
        se = math.sqrt(variance / n + self._global_var / self.n_rows)
        divergence = mean - self.global_mean
        return ContinuousPatternRecord(
            itemset=Itemset.from_pairs(self.catalog.decode(i) for i in key),
            support=n / self.n_rows,
            support_count=n,
            mean=mean,
            variance=variance,
            divergence=divergence,
            t_statistic=abs(divergence) / se if se > 0 else 0.0,
        )

    def record(self, itemset: Itemset) -> ContinuousPatternRecord:
        """Statistics of one pattern (raises if not frequent)."""
        return self.record_for_key(self.key_of(itemset))

    def divergence_of(self, itemset: Itemset) -> float:
        """Mean-score divergence of a frequent pattern."""
        return self.record(itemset).divergence

    def top_k(self, k: int = 10, ascending: bool = False
              ) -> list[ContinuousPatternRecord]:
        """Top-k subgroups by (signed) divergence."""
        records = [
            self.record_for_key(key) for key in self.frequent if len(key) > 0
        ]
        records.sort(key=lambda r: r.divergence, reverse=not ascending)
        return records[:k]

    def __len__(self) -> int:
        return len(self.frequent)

    def __repr__(self) -> str:
        return (
            f"ContinuousDivergenceResult(patterns={len(self)}, "
            f"global_mean={self.global_mean:.4f})"
        )
