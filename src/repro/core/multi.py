"""Simultaneous multi-metric divergence exploration.

The paper notes (Sec. 5) that "it is straightforward to extend
Algorithm 1 to efficiently compute the f-divergence of multiple outcome
functions simultaneously". This module implements that extension: the
outcome one-hot channels of every requested metric are stacked into one
channel matrix, the dataset is mined *once*, and a
:class:`~repro.core.result.PatternDivergenceResult` is materialized per
metric from the shared frequent-itemset table.

This is both a convenience (one call for a full audit) and a real
saving: mining dominates the cost (Fig. 6), and it is paid once instead
of once per metric.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.divergence import DivergenceExplorer
from repro.core.outcomes import outcome_channels
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError
from repro.fpm.miner import FrequentItemsets, mine_frequent
from repro.fpm.transactions import TransactionDataset


def explore_multi(
    explorer: DivergenceExplorer,
    metrics: Sequence[str],
    min_support: float = 0.1,
    algorithm: str = "bitset",
    max_length: int | None = None,
) -> dict[str, PatternDivergenceResult]:
    """Explore several metrics with a single mining pass.

    Parameters
    ----------
    explorer:
        A configured :class:`DivergenceExplorer`.
    metrics:
        Metric names (see :data:`repro.core.outcomes.OUTCOME_METRICS`).
        Duplicates are rejected.
    min_support, algorithm, max_length:
        As in :meth:`DivergenceExplorer.explore`.

    Returns
    -------
    ``{metric: PatternDivergenceResult}`` — each result is
    indistinguishable from one produced by a dedicated
    :meth:`~DivergenceExplorer.explore` call.
    """
    metrics = list(metrics)
    if not metrics:
        raise ReproError("at least one metric is required")
    if len(set(metrics)) != len(metrics):
        raise ReproError(f"duplicate metrics in {metrics}")

    # Stack the (T, F) channel pair of every metric side by side.
    channel_blocks = [
        outcome_channels(explorer.outcome_array(metric)) for metric in metrics
    ]
    stacked = np.hstack(channel_blocks)
    dataset = TransactionDataset(explorer._matrix, explorer.catalog, stacked)
    frequent = mine_frequent(
        dataset, min_support, algorithm=algorithm, max_length=max_length
    )

    keys, matrix = frequent.count_table()
    results: dict[str, PatternDivergenceResult] = {}
    for index, metric in enumerate(metrics):
        per_metric = _slice_channels(frequent, index, keys, matrix)
        results[metric] = PatternDivergenceResult(
            per_metric, explorer.catalog, metric, min_support
        )
    return results


def _slice_channels(
    frequent: FrequentItemsets,
    metric_index: int,
    keys: list | None = None,
    matrix: np.ndarray | None = None,
) -> FrequentItemsets:
    """Project a stacked count table onto one metric's (n, T, F) triple.

    The projection is one column gather over the shared count matrix;
    the per-key triples are row views into it, not per-key allocations.
    """
    if keys is None or matrix is None:
        keys, matrix = frequent.count_table()
    t_col = 1 + 2 * metric_index
    triples = np.ascontiguousarray(matrix[:, [0, t_col, t_col + 1]])
    counts = dict(zip(keys, triples))
    return FrequentItemsets(counts, frequent.n_rows, frequent.min_support)
