"""Significance-aware ranking of divergent patterns.

The paper ranks patterns by divergence and reports the Welch
t-statistic per pattern (Sec. 3.3). When *thousands* of patterns are
tested simultaneously, raw per-pattern significance overstates
confidence; Slice Finder controls the false discovery rate for the same
reason. This module adds multiple-testing control to the exhaustive
setting:

- :func:`t_to_p_value` converts the Welch statistic to a two-sided
  normal-approximation p-value (subgroup counts are large enough that
  the t distribution is effectively normal);
- :func:`benjamini_hochberg` selects the patterns whose divergence
  survives FDR control at level ``alpha``;
- :func:`significant_patterns` is the user-facing composition: the
  divergence-ranked pattern table restricted to FDR-surviving rows.
"""

from __future__ import annotations

import math

from repro.core.result import PatternDivergenceResult, PatternRecord


def t_to_p_value(t_statistic: float) -> float:
    """Two-sided p-value of a (large-sample) Welch statistic.

    Uses the normal approximation ``p = 2(1 - Φ(|t|))``; exact enough
    for the subgroup sizes a support threshold admits.
    """
    if math.isnan(t_statistic):
        return 1.0
    if math.isinf(t_statistic):
        return 0.0
    return float(2.0 * (1.0 - _phi(abs(t_statistic))))


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def benjamini_hochberg(p_values: list[float], alpha: float = 0.05) -> list[bool]:
    """Benjamini–Hochberg FDR selection.

    Returns a keep-mask aligned with ``p_values``: True where the
    hypothesis is rejected (the pattern is significantly divergent) at
    FDR level ``alpha``.
    """
    m = len(p_values)
    if m == 0:
        return []
    order = sorted(range(m), key=lambda i: p_values[i])
    threshold_rank = -1
    for rank, idx in enumerate(order, start=1):
        if p_values[idx] <= alpha * rank / m:
            threshold_rank = rank
    keep = [False] * m
    for rank, idx in enumerate(order, start=1):
        if rank <= threshold_rank:
            keep[idx] = True
    return keep


def significant_patterns(
    result: PatternDivergenceResult,
    alpha: float = 0.05,
    k: int | None = None,
) -> list[PatternRecord]:
    """Divergence-ranked patterns surviving BH FDR control at ``alpha``.

    NaN-divergence patterns are never significant. ``k`` optionally caps
    the output length.
    """
    records = result.records()
    p_values = [t_to_p_value(rec.t_statistic) for rec in records]
    keep = benjamini_hochberg(p_values, alpha=alpha)
    survivors = [
        rec
        for rec, kept in zip(records, keep)
        if kept and not math.isnan(rec.divergence)
    ]
    survivors.sort(key=lambda r: -abs(r.divergence))
    return survivors if k is None else survivors[:k]
