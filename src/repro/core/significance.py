"""Bayesian statistical significance of divergence (paper Sec. 3.3).

The positive rate of an itemset is modelled as a Bernoulli parameter
with a uniform prior; after observing ``k+`` TRUE and ``k-`` FALSE
outcomes the posterior is ``Beta(k+ + 1, k- + 1)``. The itemset rate is
compared to the dataset rate with Welch's t-statistic over the two
posterior means and variances. The Beta form stays numerically stable
even when ``k+ + k- = 0`` (all-BOTTOM itemsets).
"""

from __future__ import annotations

import math

import numpy as np


def beta_moments(k_pos: int, k_neg: int) -> tuple[float, float]:
    """Posterior mean and variance of the positive rate (paper Eq. 3).

    Parameters
    ----------
    k_pos, k_neg:
        Number of TRUE and FALSE outcomes observed in the subset.

    Returns
    -------
    ``(mean, variance)`` of ``Beta(k_pos + 1, k_neg + 1)``.
    """
    if k_pos < 0 or k_neg < 0:
        raise ValueError(f"counts must be non-negative, got ({k_pos}, {k_neg})")
    total = k_pos + k_neg
    mean = (k_pos + 1) / (total + 2)
    variance = (k_pos + 1) * (k_neg + 1) / ((total + 2) ** 2 * (total + 3))
    return mean, variance


def welch_t_statistic_signed(
    mean_a: float, var_a: float, mean_b: float, var_b: float
) -> float:
    """Signed Welch's t-statistic ``(μ_a - μ_b) / sqrt(v_a + v_b)``.

    The sign carries the direction of the divergence: positive when the
    subset rate exceeds the reference rate, negative when it falls
    below. Returns ``±inf`` when both variances are exactly zero but
    the means differ, and ``0`` when means coincide.
    """
    diff = mean_a - mean_b
    denom = math.sqrt(var_a + var_b)
    if denom == 0:
        return math.copysign(math.inf, diff) if diff != 0 else 0.0
    return diff / denom


def welch_t_statistic(
    mean_a: float, var_a: float, mean_b: float, var_b: float
) -> float:
    """Welch's t-statistic magnitude ``|μ_a - μ_b| / sqrt(v_a + v_b)``.

    The paper's tables report the magnitude; use
    :func:`welch_t_statistic_signed` wherever direction matters.
    Returns ``inf`` when both variances are exactly zero but the means
    differ, and ``0`` when means coincide.
    """
    return abs(welch_t_statistic_signed(mean_a, var_a, mean_b, var_b))


def divergence_t_statistic_signed(
    k_pos_subset: int, k_neg_subset: int, k_pos_data: int, k_neg_data: int
) -> float:
    """Signed significance of a subset's rate vs. the dataset's rate.

    Positive when the subset's posterior rate exceeds the dataset's
    (positive divergence), negative when it falls below — so
    significance columns can distinguish the direction of divergence.
    """
    mu_i, v_i = beta_moments(k_pos_subset, k_neg_subset)
    mu_d, v_d = beta_moments(k_pos_data, k_neg_data)
    return welch_t_statistic_signed(mu_i, v_i, mu_d, v_d)


def divergence_t_statistic(
    k_pos_subset: int, k_neg_subset: int, k_pos_data: int, k_neg_data: int
) -> float:
    """Significance magnitude of a subset's rate vs. the dataset's rate.

    Convenience composition of :func:`beta_moments` and
    :func:`welch_t_statistic` used for the ``t`` columns of the paper's
    tables (which report ``|t|``; the divergence column carries the
    sign there).
    """
    return abs(
        divergence_t_statistic_signed(
            k_pos_subset, k_neg_subset, k_pos_data, k_neg_data
        )
    )


def welch_t_statistics_pair(
    k_pos_a: np.ndarray,
    k_neg_a: np.ndarray,
    k_pos_b: np.ndarray,
    k_neg_b: np.ndarray,
) -> np.ndarray:
    """Vectorized signed Welch t between two aligned count arrays.

    Entry ``i`` compares the Beta posteriors of the two count pairs:
    ``welch_t_statistic_signed(*beta_moments(a_i), *beta_moments(b_i))``
    — positive where side A's posterior rate exceeds side B's. Used by
    the model-comparison engine to score a whole aligned delta table in
    one shot. Elementwise equal to the scalar composition (identical to
    the last bit while subset totals stay below ~2·10^5; beyond that
    the cubic variance denominator can round differently in float64).
    """
    mus, variances = [], []
    for k_pos, k_neg in ((k_pos_a, k_neg_a), (k_pos_b, k_neg_b)):
        k_pos = np.asarray(k_pos, dtype=np.float64)
        k_neg = np.asarray(k_neg, dtype=np.float64)
        total = k_pos + k_neg
        mus.append((k_pos + 1.0) / (total + 2.0))
        variances.append(
            (k_pos + 1.0) * (k_neg + 1.0)
            / ((total + 2.0) ** 2 * (total + 3.0))
        )
    diff = mus[0] - mus[1]
    denom = np.sqrt(variances[0] + variances[1])
    # Beta variances are strictly positive, so denom > 0 always; the
    # guard mirrors welch_t_statistic_signed exactly anyway.
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(
            denom == 0.0,
            np.where(diff > 0.0, np.inf, np.where(diff < 0.0, -np.inf, 0.0)),
            diff / denom,
        )
    return out


def mean_divergence_t_statistics(
    divergences: np.ndarray,
    variances: np.ndarray,
    counts: np.ndarray,
    global_variance: float,
    n_rows: int,
    signed: bool = False,
) -> np.ndarray:
    """Vectorized Welch t of subgroup means against the global mean.

    For real-valued outcomes (mean-score and rank/exposure divergence)
    the statistic compares a subgroup's sample mean to the dataset mean:
    ``t = Δ / sqrt(var/n + global_var/n_rows)``. Elementwise equal to
    the scalar form used by the per-record oracles; a zero standard
    error yields ``0`` (both populations are constant, mirroring the
    scalar guard) and NaN divergences stay NaN. The default returns the
    magnitude ``|t|``; ``signed=True`` keeps the direction.
    """
    div = np.asarray(divergences, dtype=np.float64)
    var = np.asarray(variances, dtype=np.float64)
    n = np.asarray(counts, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        se = np.sqrt(
            np.where(n > 0, var / n, np.nan) + global_variance / n_rows
        )
        out = np.where(se > 0, div / se, 0.0)
    out = np.where(np.isnan(div) | np.isnan(se), np.nan, out)
    return out if signed else np.abs(out)


def divergence_t_statistics(
    k_pos: np.ndarray,
    k_neg: np.ndarray,
    k_pos_data: int,
    k_neg_data: int,
    signed: bool = False,
) -> np.ndarray:
    """Vectorized :func:`divergence_t_statistic` over count arrays.

    ``k_pos``/``k_neg`` are parallel arrays of subset counts; returns the
    float64 array of t-statistics, elementwise equal to the scalar form.
    With ``signed=True`` the statistics keep the direction of the
    divergence (:func:`divergence_t_statistic_signed`); the default
    magnitude form matches the paper's tables. Used to build the whole
    divergence table in one shot.
    """
    k_pos = np.asarray(k_pos, dtype=np.float64)
    k_neg = np.asarray(k_neg, dtype=np.float64)
    total = k_pos + k_neg
    mu = (k_pos + 1.0) / (total + 2.0)
    var = (k_pos + 1.0) * (k_neg + 1.0) / ((total + 2.0) ** 2 * (total + 3.0))
    mu_d, var_d = beta_moments(k_pos_data, k_neg_data)
    diff = mu - mu_d
    denom = np.sqrt(var + var_d)
    # Beta variances are strictly positive, so denom > 0 always; the
    # guard mirrors welch_t_statistic_signed exactly anyway.
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(
            denom == 0.0,
            np.where(diff > 0.0, np.inf, np.where(diff < 0.0, -np.inf, 0.0)),
            diff / denom,
        )
    return out if signed else np.abs(out)
