"""Result of a divergence exploration: the ranked pattern table.

:class:`PatternDivergenceResult` wraps the frequent-itemset counts
produced by Algorithm 1 and exposes every analysis of the paper —
ranked divergent patterns with significance, Shapley contributions,
global/individual item divergence, corrective items, redundancy pruning
and lattice construction — as methods. Itemsets cross the API boundary
as readable :class:`~repro.core.items.Itemset` objects; internally they
are frozensets of integer item ids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.items import Item, Itemset
from repro.core.outcomes import positive_rate
from repro.core.significance import divergence_t_statistic, divergence_t_statistics
from repro.exceptions import ReproError
from repro.fpm.miner import FrequentItemsets
from repro.fpm.transactions import ItemCatalog


@dataclass(frozen=True)
class PatternRecord:
    """One row of the divergence table: an itemset with its statistics."""

    itemset: Itemset
    support: float
    support_count: int
    t_count: int
    f_count: int
    rate: float
    divergence: float
    t_statistic: float

    @property
    def length(self) -> int:
        """Number of items in the pattern."""
        return len(self.itemset)


class PatternDivergenceResult:
    """All frequent itemsets with divergence for one outcome metric.

    Not constructed directly — obtained from
    :meth:`repro.core.divergence.DivergenceExplorer.explore`.
    """

    def __init__(
        self,
        frequent: FrequentItemsets,
        catalog: ItemCatalog,
        metric: str,
        min_support: float,
    ) -> None:
        self.frequent = frequent
        self.catalog = catalog
        self.metric = metric
        self.min_support = min_support
        totals = frequent.totals
        self.n_rows = int(totals[0])
        self.t_total = int(totals[1])
        self.f_total = int(totals[2])
        self.global_rate = positive_rate(self.t_total, self.f_total)
        # The whole count table as one (N, 3) matrix, in iteration
        # order; every per-pattern statistic is a single vectorized
        # expression over its columns.
        self._keys: list[frozenset[int]] = []
        rows = []
        for key, counts in frequent.items():
            self._keys.append(key)
            rows.append(counts[:3])
        self._count_matrix = (
            np.asarray(rows, dtype=np.int64)
            if rows
            else np.empty((0, 3), dtype=np.int64)
        )
        t_col = self._count_matrix[:, 1].astype(np.float64)
        f_col = self._count_matrix[:, 2].astype(np.float64)
        denom = t_col + f_col
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = np.where(denom > 0, t_col / denom, np.nan)
        self._rates = rates
        divergences = rates - self.global_rate
        # key -> divergence, computed once for all itemsets
        self._divergence: dict[frozenset[int], float] = dict(
            zip(self._keys, divergences.tolist())
        )
        self._records: list[PatternRecord] | None = None

    # ------------------------------------------------------------------
    # itemset translation
    # ------------------------------------------------------------------

    def key_of(self, itemset: Itemset) -> frozenset[int]:
        """Encode a readable itemset to internal item ids."""
        return frozenset(
            self.catalog.item_id(it.attribute, it.value) for it in itemset
        )

    def itemset_of(self, key: Iterable[int]) -> Itemset:
        """Decode internal item ids to a readable itemset."""
        return Itemset.from_pairs(self.catalog.decode(i) for i in key)

    def item_of(self, item_id: int) -> Item:
        """Decode one item id."""
        attr, value = self.catalog.decode(item_id)
        return Item(attr, value)

    # ------------------------------------------------------------------
    # per-pattern statistics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.frequent)

    def __contains__(self, itemset: Itemset) -> bool:
        return self.key_of(itemset) in self.frequent

    def record_for_key(self, key: frozenset[int]) -> PatternRecord:
        """Build the full statistics record of one internal key."""
        counts = self.frequent.counts(key)
        n, t, f = int(counts[0]), int(counts[1]), int(counts[2])
        rate = positive_rate(t, f)
        return PatternRecord(
            itemset=self.itemset_of(key),
            support=n / self.n_rows,
            support_count=n,
            t_count=t,
            f_count=f,
            rate=rate,
            divergence=rate - self.global_rate,
            t_statistic=divergence_t_statistic(t, f, self.t_total, self.f_total),
        )

    def record(self, itemset: Itemset) -> PatternRecord:
        """Statistics of one pattern (raises if not frequent)."""
        return self.record_for_key(self.key_of(itemset))

    def divergence_of(self, itemset: Itemset) -> float:
        """``Δ_f(I)`` of a frequent pattern."""
        return self.divergence_of_key(self.key_of(itemset))

    def divergence_of_key(self, key: frozenset[int]) -> float:
        """``Δ_f`` by internal key."""
        try:
            return self._divergence[frozenset(key)]
        except KeyError:
            raise ReproError(
                f"pattern {set(key)} is not frequent at support {self.min_support}"
            ) from None

    def divergence_or_zero(self, key: frozenset[int]) -> float:
        """``Δ_f`` treating undefined (all-BOTTOM) rates as no divergence.

        Used by the Shapley-style aggregations, where a NaN from an
        all-BOTTOM subset would otherwise poison every sum it enters.
        """
        value = self._divergence.get(frozenset(key))
        if value is None or math.isnan(value):
            return 0.0
        return value

    @property
    def divergence_map(self) -> dict[frozenset[int], float]:
        """Read-only view of key -> divergence for all frequent itemsets."""
        return dict(self._divergence)

    # ------------------------------------------------------------------
    # the ranked pattern table
    # ------------------------------------------------------------------

    def records(self, include_empty: bool = False) -> list[PatternRecord]:
        """All frequent patterns as records (cached).

        The numeric columns (support, rate, divergence, t-statistic) are
        computed for the whole table in single vectorized expressions;
        only the readable itemset decoding remains per-row.
        """
        if self._records is None:
            counts = self._count_matrix
            n_col, t_col, f_col = counts[:, 0], counts[:, 1], counts[:, 2]
            supports = n_col / self.n_rows
            divergences = self._rates - self.global_rate
            t_stats = divergence_t_statistics(
                t_col, f_col, self.t_total, self.f_total
            )
            self._records = [
                PatternRecord(
                    itemset=self.itemset_of(key),
                    support=supports[i],
                    support_count=int(n_col[i]),
                    t_count=int(t_col[i]),
                    f_count=int(f_col[i]),
                    rate=self._rates[i],
                    divergence=divergences[i],
                    t_statistic=t_stats[i],
                )
                for i, key in enumerate(self._keys)
            ]
        if include_empty:
            return list(self._records)
        return [r for r in self._records if len(r.itemset) > 0]

    def top_k(
        self,
        k: int = 10,
        by: str = "divergence",
        ascending: bool = False,
        min_support: float | None = None,
        max_length: int | None = None,
    ) -> list[PatternRecord]:
        """Top-k patterns ranked by a statistic.

        ``by`` is one of ``divergence``, ``abs_divergence``, ``support``,
        ``t_statistic``, ``rate``. NaN-valued rows are excluded. Ties are
        broken by support (higher first), then pattern length (shorter
        first), then lexicographically, so the ranking is identical
        whichever mining backend produced the result.
        """
        rows = self.records()
        if min_support is not None:
            rows = [r for r in rows if r.support >= min_support]
        if max_length is not None:
            rows = [r for r in rows if r.length <= max_length]
        key_fn = {
            "divergence": lambda r: r.divergence,
            "abs_divergence": lambda r: abs(r.divergence),
            "support": lambda r: r.support,
            "t_statistic": lambda r: r.t_statistic,
            "rate": lambda r: r.rate,
        }.get(by)
        if key_fn is None:
            raise ReproError(f"unknown ranking key {by!r}")
        rows = [r for r in rows if not math.isnan(key_fn(r))]
        sign = 1.0 if ascending else -1.0
        rows.sort(
            key=lambda r: (
                sign * key_fn(r),
                -r.support,
                r.length,
                str(r.itemset),
            )
        )
        return rows[:k]

    # ------------------------------------------------------------------
    # analyses (delegating to the dedicated modules)
    # ------------------------------------------------------------------

    def shapley(self, itemset: Itemset) -> dict[Item, float]:
        """Local item contributions to the pattern's divergence (Def. 4.1)."""
        from repro.core.shapley import shapley_contributions

        return shapley_contributions(self, itemset)

    def global_item_divergence(self) -> dict[Item, float]:
        """Global divergence of every frequent item (Def. 4.3, Eq. 8)."""
        from repro.core.global_divergence import global_item_divergence

        return global_item_divergence(self)

    def individual_item_divergence(self) -> dict[Item, float]:
        """Plain ``Δ(α)`` of every frequent single item."""
        from repro.core.global_divergence import individual_item_divergence

        return individual_item_divergence(self)

    def corrective_items(self, k: int = 10) -> list["CorrectiveItem"]:
        """Top corrective items by corrective factor (Def. 4.2)."""
        from repro.core.corrective import find_corrective_items

        return find_corrective_items(self, k=k)

    def pruned(self, epsilon: float) -> list[PatternRecord]:
        """ε-redundancy-pruned pattern table (Sec. 3.5)."""
        from repro.core.pruning import prune_redundant

        return prune_redundant(self, epsilon)

    def lattice(self, itemset: Itemset) -> "DivergenceLattice":
        """Subset lattice of a pattern for visual exploration (Sec. 6.4)."""
        from repro.core.lattice import DivergenceLattice

        return DivergenceLattice(self, itemset)

    def significant(self, alpha: float = 0.05, k: int | None = None
                    ) -> list[PatternRecord]:
        """Patterns surviving Benjamini-Hochberg FDR control at ``alpha``."""
        from repro.core.ranking import significant_patterns

        return significant_patterns(self, alpha=alpha, k=k)

    # ------------------------------------------------------------------

    def frequent_items(self) -> list[Item]:
        """All single items that are frequent, in catalog order."""
        out = []
        for item_id in range(self.catalog.n_items):
            if frozenset((item_id,)) in self.frequent:
                out.append(self.item_of(item_id))
        return out

    def __repr__(self) -> str:
        return (
            f"PatternDivergenceResult(metric={self.metric!r}, "
            f"patterns={len(self)}, min_support={self.min_support}, "
            f"global_rate={self.global_rate:.4f})"
        )


def records_as_rows(
    records: Sequence[PatternRecord], divergence_label: str = "div"
) -> list[dict[str, object]]:
    """Flatten records into printable row dicts (used by the benches)."""
    return [
        {
            "itemset": str(r.itemset),
            "sup": round(r.support, 3),
            divergence_label: round(r.divergence, 3),
            "t": round(r.t_statistic, 1),
        }
        for r in records
    ]
