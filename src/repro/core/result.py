"""Result of a divergence exploration: the ranked pattern table.

:class:`PatternDivergenceResult` wraps the frequent-itemset counts
produced by Algorithm 1 and exposes every analysis of the paper —
ranked divergent patterns with significance, Shapley contributions,
global/individual item divergence, corrective items, redundancy pruning
and lattice construction — as methods. Itemsets cross the API boundary
as readable :class:`~repro.core.items.Itemset` objects; internally they
are frozensets of integer item ids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.items import Item, Itemset
from repro.core.outcomes import positive_rate
from repro.core.significance import (
    divergence_t_statistic_signed,
    divergence_t_statistics,
)
from repro.exceptions import ReproError
from repro.fpm.miner import FrequentItemsets
from repro.fpm.transactions import ItemCatalog


@dataclass(frozen=True)
class PatternRecord:
    """One row of the divergence table: an itemset with its statistics.

    ``t_statistic`` is the Welch magnitude ``|t|`` the paper's tables
    report; ``t_signed`` keeps the direction (same sign as the rate
    difference of the posteriors) so serializations can distinguish
    positive from negative divergence.
    """

    itemset: Itemset
    support: float
    support_count: int
    t_count: int
    f_count: int
    rate: float
    divergence: float
    t_statistic: float
    t_signed: float = float("nan")

    @property
    def length(self) -> int:
        """Number of items in the pattern."""
        return len(self.itemset)


class PatternDivergenceResult:
    """All frequent itemsets with divergence for one outcome metric.

    Not constructed directly — obtained from
    :meth:`repro.core.divergence.DivergenceExplorer.explore`.
    """

    def __init__(
        self,
        frequent: FrequentItemsets,
        catalog: ItemCatalog,
        metric: str,
        min_support: float,
    ) -> None:
        self.frequent = frequent
        self.catalog = catalog
        self.metric = metric
        self.min_support = min_support
        totals = frequent.totals
        self.n_rows = int(totals[0])
        self.t_total = int(totals[1])
        self.f_total = int(totals[2])
        self.global_rate = positive_rate(self.t_total, self.f_total)
        # The whole count table as one (N, 3) matrix, in iteration
        # order; every per-pattern statistic is a single vectorized
        # expression over its columns.
        # All count vectors of one mining run share a length, so one
        # concatenate + reshape assembles the matrix far faster than
        # np.asarray over per-key row slices.
        self._keys: list[frozenset[int]] = []
        vectors = []
        for key, counts in frequent.items():
            self._keys.append(key)
            vectors.append(counts)
        self._count_matrix = (
            np.concatenate(vectors)
            .astype(np.int64, copy=False)
            .reshape(len(self._keys), -1)[:, :3]
            if vectors
            else np.empty((0, 3), dtype=np.int64)
        )
        self._records: list[PatternRecord] | None = None
        self._records_nonempty: list[PatternRecord] | None = None
        # Columnar caches for the vectorized analytics: the structural
        # lattice index and the per-row divergence vector.
        self._lattice_index = None
        self._t_stats: np.ndarray | None = None
        self._t_stats_signed: np.ndarray | None = None
        self._derive_statistics()

    def _derive_statistics(self) -> None:
        """Derive the columnar rate/divergence table from the counts.

        Subclasses for other outcome families (e.g. the rank-divergence
        table, whose channels are fixed-point moment sums rather than
        Boolean outcome counts) override this single hook; the count
        matrix, key list and every downstream lattice analysis stay
        shared.
        """
        t_col = self._count_matrix[:, 1].astype(np.float64)
        f_col = self._count_matrix[:, 2].astype(np.float64)
        denom = t_col + f_col
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = np.where(denom > 0, t_col / denom, np.nan)
        self._rates = rates
        divergences = rates - self.global_rate
        self._div_vector: np.ndarray | None = divergences
        self._div_vector_source: object = None

    @property
    def _divergence(self) -> dict[frozenset[int], float]:
        """key -> divergence for all itemsets, built lazily.

        The vectorized analytics only need :attr:`_div_vector`; the
        dict exists for the map-keyed accessors and is derived from the
        vector on first use. Assigning a replacement map (model
        comparison tooling, tests) is honored: ``divergence_vector``
        re-derives the vector from the substituted map.
        """
        mapping = self.__dict__.get("_divergence_map")
        if mapping is None:
            mapping = dict(zip(self._keys, self._div_vector.tolist()))
            self.__dict__["_divergence_map"] = mapping
            self._div_vector_source = mapping
        return mapping

    @_divergence.setter
    def _divergence(self, mapping: dict[frozenset[int], float]) -> None:
        self.__dict__["_divergence_map"] = mapping

    # ------------------------------------------------------------------
    # itemset translation
    # ------------------------------------------------------------------

    def key_of(self, itemset: Itemset) -> frozenset[int]:
        """Encode a readable itemset to internal item ids."""
        return frozenset(
            self.catalog.item_id(it.attribute, it.value) for it in itemset
        )

    def itemset_of(self, key: Iterable[int]) -> Itemset:
        """Decode internal item ids to a readable itemset."""
        return Itemset.from_pairs(self.catalog.decode(i) for i in key)

    def item_of(self, item_id: int) -> Item:
        """Decode one item id."""
        attr, value = self.catalog.decode(item_id)
        return Item(attr, value)

    # ------------------------------------------------------------------
    # per-pattern statistics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.frequent)

    def __contains__(self, itemset: Itemset) -> bool:
        return self.key_of(itemset) in self.frequent

    def record_for_key(self, key: frozenset[int]) -> PatternRecord:
        """Build the full statistics record of one internal key."""
        counts = self.frequent.counts(key)
        n, t, f = int(counts[0]), int(counts[1]), int(counts[2])
        rate = positive_rate(t, f)
        t_signed = divergence_t_statistic_signed(
            t, f, self.t_total, self.f_total
        )
        return PatternRecord(
            itemset=self.itemset_of(key),
            support=n / self.n_rows,
            support_count=n,
            t_count=t,
            f_count=f,
            rate=rate,
            divergence=rate - self.global_rate,
            t_statistic=abs(t_signed),
            t_signed=t_signed,
        )

    def record(self, itemset: Itemset) -> PatternRecord:
        """Statistics of one pattern (raises if not frequent)."""
        return self.record_for_key(self.key_of(itemset))

    def divergence_of(self, itemset: Itemset) -> float:
        """``Δ_f(I)`` of a frequent pattern."""
        return self.divergence_of_key(self.key_of(itemset))

    def divergence_of_key(self, key: frozenset[int]) -> float:
        """``Δ_f`` by internal key."""
        try:
            return self._divergence[frozenset(key)]
        except KeyError:
            raise ReproError(
                f"pattern {set(key)} is not frequent at support {self.min_support}"
            ) from None

    def divergence_or_zero(self, key: frozenset[int]) -> float:
        """``Δ_f`` treating undefined (all-BOTTOM) rates as no divergence.

        Used by the Shapley-style aggregations, where a NaN from an
        all-BOTTOM subset would otherwise poison every sum it enters.
        """
        value = self._divergence.get(frozenset(key))
        if value is None or math.isnan(value):
            return 0.0
        return value

    @property
    def divergence_map(self) -> dict[frozenset[int], float]:
        """Read-only view of key -> divergence for all frequent itemsets."""
        return dict(self._divergence)

    # ------------------------------------------------------------------
    # columnar access (the vectorized analytics engine)
    # ------------------------------------------------------------------

    def lattice_index(self) -> "LatticeIndex":
        """The columnar lattice index of this table (built once, cached).

        Results are immutable, so the index is never invalidated; every
        vectorized analysis — global divergence, pruning, corrective
        search, batched Shapley — shares this one structure.
        """
        if self._lattice_index is None:
            from repro.core.lattice_index import LatticeIndex

            self._lattice_index = LatticeIndex(self._keys, self.catalog)
        return self._lattice_index

    def divergence_vector(self, zero_nan: bool = False) -> np.ndarray:
        """``Δ_f`` per table row, aligned with :meth:`lattice_index` rows.

        With ``zero_nan`` undefined (all-BOTTOM) divergences become 0,
        mirroring :meth:`divergence_or_zero`. The vector tracks
        :attr:`divergence_map`, so results whose map was substituted
        stay consistent.
        """
        mapping = self.__dict__.get("_divergence_map")
        if mapping is not None and self._div_vector_source is not mapping:
            nan = float("nan")
            self._div_vector = np.fromiter(
                (mapping.get(key, nan) for key in self._keys),
                dtype=np.float64,
                count=len(self._keys),
            )
            self._div_vector_source = mapping
        if zero_nan:
            return np.nan_to_num(self._div_vector, nan=0.0)
        return self._div_vector

    def row_of_key(self, key: frozenset[int]) -> int:
        """Table row index of an internal key (``-1`` when not frequent)."""
        index = self.lattice_index()
        ids = np.asarray(sorted(key), dtype=np.uint32) + 1
        return int(index.rows_of_padded(index.pad_keys(ids[None, :]))[0])

    # ------------------------------------------------------------------
    # the ranked pattern table
    # ------------------------------------------------------------------

    def t_statistics_vector(self, signed: bool = False) -> np.ndarray:
        """Welch t-statistic per table row (computed once, cached).

        The default is the magnitude ``|t|`` the paper's tables report;
        ``signed=True`` returns the direction-preserving statistics.
        Both views share one underlying computation.
        """
        if self._t_stats_signed is None:
            counts = self._count_matrix
            self._t_stats_signed = divergence_t_statistics(
                counts[:, 1],
                counts[:, 2],
                self.t_total,
                self.f_total,
                signed=True,
            )
            self._t_stats = np.abs(self._t_stats_signed)
        return self._t_stats_signed if signed else self._t_stats

    def _record_for_row(self, row: int) -> PatternRecord:
        """Materialize one row's record from the columnar statistics."""
        counts = self._count_matrix
        return PatternRecord(
            itemset=self.itemset_of(self._keys[row]),
            support=counts[row, 0] / self.n_rows,
            support_count=int(counts[row, 0]),
            t_count=int(counts[row, 1]),
            f_count=int(counts[row, 2]),
            rate=self._rates[row],
            divergence=self._rates[row] - self.global_rate,
            t_statistic=self.t_statistics_vector()[row],
            t_signed=self.t_statistics_vector(signed=True)[row],
        )

    def records_for_rows(self, rows: Iterable[int]) -> list[PatternRecord]:
        """Records of specific table rows, reusing the full cache when
        it exists and materializing only the requested rows otherwise."""
        if self._records is not None:
            return [self._records[row] for row in rows]
        return [self._record_for_row(int(row)) for row in rows]

    def records(self, include_empty: bool = False) -> list[PatternRecord]:
        """All frequent patterns as records (cached).

        The numeric columns (support, rate, divergence, t-statistic) are
        computed for the whole table in single vectorized expressions;
        only the readable itemset decoding remains per-row. Both views
        (with and without the empty pattern) are materialized once, so
        repeated ``top_k`` / ``significant`` / ``pruned`` calls do not
        rebuild N dataclass rows each time.
        """
        if self._records is None:
            counts = self._count_matrix
            n_col, t_col, f_col = counts[:, 0], counts[:, 1], counts[:, 2]
            supports = n_col / self.n_rows
            divergences = self._rates - self.global_rate
            t_stats = self.t_statistics_vector()
            t_signed = self.t_statistics_vector(signed=True)
            self._records = [
                PatternRecord(
                    itemset=self.itemset_of(key),
                    support=supports[i],
                    support_count=int(n_col[i]),
                    t_count=int(t_col[i]),
                    f_count=int(f_col[i]),
                    rate=self._rates[i],
                    divergence=divergences[i],
                    t_statistic=t_stats[i],
                    t_signed=t_signed[i],
                )
                for i, key in enumerate(self._keys)
            ]
            self._records_nonempty = [
                r for r in self._records if len(r.itemset) > 0
            ]
        if include_empty:
            return list(self._records)
        return list(self._records_nonempty)

    def top_k(
        self,
        k: int = 10,
        by: str = "divergence",
        ascending: bool = False,
        min_support: float | None = None,
        max_length: int | None = None,
    ) -> list[PatternRecord]:
        """Top-k patterns ranked by a statistic.

        ``by`` is one of ``divergence``, ``abs_divergence``, ``support``,
        ``t_statistic``, ``rate``. NaN-valued rows are excluded. Ties are
        broken by support (higher first), then pattern length (shorter
        first), then lexicographically, so the ranking is identical
        whichever mining backend produced the result.
        """
        rows = self.records()
        if min_support is not None:
            rows = [r for r in rows if r.support >= min_support]
        if max_length is not None:
            rows = [r for r in rows if r.length <= max_length]
        key_fn = {
            "divergence": lambda r: r.divergence,
            "abs_divergence": lambda r: abs(r.divergence),
            "support": lambda r: r.support,
            "t_statistic": lambda r: r.t_statistic,
            "rate": lambda r: r.rate,
        }.get(by)
        if key_fn is None:
            raise ReproError(f"unknown ranking key {by!r}")
        rows = [r for r in rows if not math.isnan(key_fn(r))]
        sign = 1.0 if ascending else -1.0
        rows.sort(
            key=lambda r: (
                sign * key_fn(r),
                -r.support,
                r.length,
                str(r.itemset),
            )
        )
        return rows[:k]

    # ------------------------------------------------------------------
    # analyses (delegating to the dedicated modules)
    # ------------------------------------------------------------------

    def shapley(self, itemset: Itemset) -> dict[Item, float]:
        """Local item contributions to the pattern's divergence (Def. 4.1)."""
        from repro.core.shapley import shapley_contributions

        return shapley_contributions(self, itemset)

    def shapley_batch(
        self, itemsets: Sequence[Itemset]
    ) -> list[dict[Item, float]]:
        """Exact Shapley contributions of many patterns in one batch."""
        from repro.core.shapley import shapley_batch

        return shapley_batch(self, itemsets)

    def global_item_divergence(self) -> dict[Item, float]:
        """Global divergence of every frequent item (Def. 4.3, Eq. 8)."""
        from repro.core.global_divergence import global_item_divergence

        return global_item_divergence(self)

    def individual_item_divergence(self) -> dict[Item, float]:
        """Plain ``Δ(α)`` of every frequent single item."""
        from repro.core.global_divergence import individual_item_divergence

        return individual_item_divergence(self)

    def corrective_items(self, k: int = 10) -> list["CorrectiveItem"]:
        """Top corrective items by corrective factor (Def. 4.2)."""
        from repro.core.corrective import find_corrective_items

        return find_corrective_items(self, k=k)

    def pruned(self, epsilon: float) -> list[PatternRecord]:
        """ε-redundancy-pruned pattern table (Sec. 3.5)."""
        from repro.core.pruning import prune_redundant

        return prune_redundant(self, epsilon)

    def lattice(self, itemset: Itemset) -> "DivergenceLattice":
        """Subset lattice of a pattern for visual exploration (Sec. 6.4)."""
        from repro.core.lattice import DivergenceLattice

        return DivergenceLattice(self, itemset)

    def significant(self, alpha: float = 0.05, k: int | None = None
                    ) -> list[PatternRecord]:
        """Patterns surviving Benjamini-Hochberg FDR control at ``alpha``."""
        from repro.core.ranking import significant_patterns

        return significant_patterns(self, alpha=alpha, k=k)

    # ------------------------------------------------------------------

    def frequent_items(self) -> list[Item]:
        """All single items that are frequent, in catalog order."""
        out = []
        for item_id in range(self.catalog.n_items):
            if frozenset((item_id,)) in self.frequent:
                out.append(self.item_of(item_id))
        return out

    def __repr__(self) -> str:
        return (
            f"PatternDivergenceResult(metric={self.metric!r}, "
            f"patterns={len(self)}, min_support={self.min_support}, "
            f"global_rate={self.global_rate:.4f})"
        )


def records_as_rows(
    records: Sequence[PatternRecord], divergence_label: str = "div"
) -> list[dict[str, object]]:
    """Flatten records into printable row dicts (used by the benches)."""
    return [
        {
            "itemset": str(r.itemset),
            "sup": round(r.support, 3),
            divergence_label: round(r.divergence, 3),
            "t": round(r.t_statistic, 1),
        }
        for r in records
    ]
