"""Overflow-safe fixed-point encoding of real-valued outcome weights.

The frequent-pattern miners accumulate per-itemset *channel sums* in
int64. Real-valued scores are carried through those accumulators as
fixed-point integers: a weight ``w`` becomes ``round(w * SCALE)`` and
``round(w**2 * SCALE)``, so every itemset's (Σw, Σw²) — and from them
mean, variance and a Welch t — fall out of the same single mining pass
that counts support.

int64 addition is exact, but only while the totals fit. The worst-case
sum over ``n`` rows is ``n * max(|fixed|, fixed_sq)``; at the default
scale of 1e6, a score of magnitude ~1e3 squared over 10M rows already
exceeds 2**63 and earlier code silently wrapped around. This module is
the single shared encoder (used by :mod:`repro.core.continuous` and
:mod:`repro.rank`): it checks the bound up front and raises a clear
:class:`~repro.exceptions.ReproError` instead of corrupting results.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError

#: Fixed-point scaling used to carry real-valued scores through the
#: integer channel accumulators without precision loss that matters.
SCALE = 1_000_000

#: Headroom bound for the worst-case int64 channel sum: we require the
#: sum to stay below 2**62 (half the int64 range), so even a pessimistic
#: accounting of rounding cannot push an accumulator over the edge.
_SUM_LIMIT = 2**62


def encode_weight_channels(
    weights: np.ndarray, scale: int = SCALE
) -> np.ndarray:
    """Encode per-row weights as (Σw, Σw²) fixed-point mining channels.

    Parameters
    ----------
    weights:
        Finite per-row real weights, shape ``(n_rows,)``.
    scale:
        Fixed-point multiplier (default :data:`SCALE`).

    Returns
    -------
    ``(n_rows, 2)`` int64 array: column 0 is ``round(w * scale)``,
    column 1 is ``round(w**2 * scale)``. Summing either column over any
    row subset is exact in int64 thanks to the overflow check.

    Raises
    ------
    ReproError
        If any weight is non-finite, or the worst-case channel sum
        ``n_rows * max(|fixed|, fixed_sq)`` could exceed the int64
        headroom bound. Center or standardize the scores (e.g.
        ``(w - w.mean()) / w.std()``) to shrink the magnitudes.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ReproError(
            f"weights must be one-dimensional, got shape {weights.shape}"
        )
    if not np.isfinite(weights).all():
        raise ReproError("weights must be finite")
    n_rows = weights.shape[0]
    peak = float(np.abs(weights).max(initial=0.0))
    # Check in float space *before* casting: the cast itself wraps
    # silently once round(w^2 * scale) passes 2**63.
    worst = max(peak, peak * peak) * float(scale) + 1.0
    if n_rows * worst > _SUM_LIMIT:
        raise ReproError(
            "fixed-point overflow: weights of magnitude up to "
            f"{peak:.6g} summed over {n_rows} rows exceed the int64 "
            "accumulator headroom; center or standardize the scores "
            "(e.g. subtract the mean and divide by the standard "
            "deviation) before exploring"
        )
    fixed = np.round(weights * scale).astype(np.int64)
    fixed_sq = np.round(weights * weights * scale).astype(np.int64)
    return np.column_stack([fixed, fixed_sq])


def decode_moments(
    sum_w: np.ndarray | float,
    sum_w_sq: np.ndarray | float,
    counts: np.ndarray | int,
    scale: int = SCALE,
) -> tuple[np.ndarray, np.ndarray]:
    """Recover (mean, variance) from fixed-point channel sums.

    Vectorized over aligned arrays; zero-count entries decode to NaN
    mean and zero variance. Variance is the population second moment
    ``E[w²] - E[w]²``, clipped at zero against fixed-point rounding.
    """
    sum_w = np.asarray(sum_w, dtype=np.float64)
    sum_w_sq = np.asarray(sum_w_sq, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        mean = np.where(counts > 0, sum_w / scale / counts, np.nan)
        variance = np.where(
            counts > 0,
            np.maximum(sum_w_sq / scale / counts - mean * mean, 0.0),
            0.0,
        )
    return mean, variance
