"""Corrective items (paper Def. 4.2, Table 3).

An item ``α ∉ I`` is *corrective* for pattern ``I`` when adding it
shrinks the divergence in absolute value: ``|Δ(I ∪ α)| < |Δ(I)|``. The
corrective factor is the shrinkage ``|Δ(I)| − |Δ(I ∪ α)|``. Detecting
corrective items requires the exhaustive exploration: a pruned search
that stops at divergent patterns never sees the corrected supersets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.items import Item, Itemset
from repro.core.result import PatternDivergenceResult
from repro.core.significance import beta_moments, welch_t_statistic


@dataclass(frozen=True)
class CorrectiveItem:
    """One corrective observation: item ``item`` corrects pattern ``base``."""

    base: Itemset
    item: Item
    base_divergence: float
    corrected_divergence: float
    corrective_factor: float
    t_statistic: float

    def __str__(self) -> str:
        return (
            f"({self.base}) + {self.item}: "
            f"Δ {self.base_divergence:+.3f} -> {self.corrected_divergence:+.3f} "
            f"(c_f={self.corrective_factor:.3f}, t={self.t_statistic:.1f})"
        )


def find_corrective_items(
    result: PatternDivergenceResult,
    k: int = 10,
    min_factor: float = 0.0,
) -> list[CorrectiveItem]:
    """Top-``k`` corrective items across all frequent patterns.

    Scans every frequent itemset ``K`` and every ``α ∈ K``, comparing
    ``|Δ(K)|`` against ``|Δ(K \\ α)|``; ranked by corrective factor.
    The reported ``t`` is the Welch statistic between the Beta posteriors
    of the base and corrected patterns, measuring how significant the
    correction itself is.
    """
    found: list[CorrectiveItem] = []
    for key in result.frequent:
        if len(key) < 2:
            continue  # the base pattern must be non-empty
        div_k = result.divergence_of_key(key)
        if math.isnan(div_k):
            continue
        for alpha in key:
            base_key = key - {alpha}
            div_base = result.divergence_of_key(base_key)
            if math.isnan(div_base):
                continue
            factor = abs(div_base) - abs(div_k)
            if factor <= min_factor:
                continue
            base_counts = result.frequent.counts(base_key)
            corr_counts = result.frequent.counts(key)
            mu_b, var_b = beta_moments(int(base_counts[1]), int(base_counts[2]))
            mu_c, var_c = beta_moments(int(corr_counts[1]), int(corr_counts[2]))
            found.append(
                CorrectiveItem(
                    base=result.itemset_of(base_key),
                    item=result.item_of(alpha),
                    base_divergence=div_base,
                    corrected_divergence=div_k,
                    corrective_factor=factor,
                    t_statistic=welch_t_statistic(mu_b, var_b, mu_c, var_c),
                )
            )
    found.sort(key=lambda c: c.corrective_factor, reverse=True)
    return found[:k]


def is_corrective(
    result: PatternDivergenceResult, base: Itemset, item: Item
) -> bool:
    """Whether ``item`` is corrective for ``base`` (both must be frequent)."""
    div_base = result.divergence_of(base)
    div_ext = result.divergence_of(base.union(item))
    if math.isnan(div_base) or math.isnan(div_ext):
        return False
    return abs(div_ext) < abs(div_base)
