"""Corrective items (paper Def. 4.2, Table 3).

An item ``α ∉ I`` is *corrective* for pattern ``I`` when adding it
shrinks the divergence in absolute value: ``|Δ(I ∪ α)| < |Δ(I)|``. The
corrective factor is the shrinkage ``|Δ(I)| − |Δ(I ∪ α)|``. Detecting
corrective items requires the exhaustive exploration: a pruned search
that stops at divergent patterns never sees the corrected supersets.

The search is a masked gather over the lattice index: every (pattern,
item) pair is one flat entry, the base pattern is its precomputed
parent row, and the Beta/Welch significance of all candidate
corrections is computed in one vectorized shot. Only the top candidates
are materialized into :class:`CorrectiveItem` objects. The original
dict-walk search is retained as
:func:`find_corrective_items_reference`, the oracle the vectorized path
is property-tested against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.items import Item, Itemset
from repro.core.result import PatternDivergenceResult
from repro.core.significance import beta_moments, welch_t_statistic
from repro.obs import span
from repro.resilience import checkpoint


@dataclass(frozen=True)
class CorrectiveItem:
    """One corrective observation: item ``item`` corrects pattern ``base``."""

    base: Itemset
    item: Item
    base_divergence: float
    corrected_divergence: float
    corrective_factor: float
    t_statistic: float

    def __str__(self) -> str:
        return (
            f"({self.base}) + {self.item}: "
            f"Δ {self.base_divergence:+.3f} -> {self.corrected_divergence:+.3f} "
            f"(c_f={self.corrective_factor:.3f}, t={self.t_statistic:.1f})"
        )


def _sort_corrections(found: list[CorrectiveItem]) -> list[CorrectiveItem]:
    """Deterministic ranking: factor first, then readable tie-breakers
    so the output is independent of the mining backend's enumeration."""
    found.sort(
        key=lambda c: (-c.corrective_factor, str(c.base), str(c.item))
    )
    return found


@span("kernel.find_corrective_items")
def find_corrective_items(
    result: PatternDivergenceResult,
    k: int = 10,
    min_factor: float = 0.0,
) -> list[CorrectiveItem]:
    """Top-``k`` corrective items across all frequent patterns.

    Scans every frequent itemset ``K`` and every ``α ∈ K``, comparing
    ``|Δ(K)|`` against ``|Δ(K \\ α)|``; ranked by corrective factor.
    The reported ``t`` is the Welch statistic between the Beta posteriors
    of the base and corrected patterns, measuring how significant the
    correction itself is. The scan is a single masked pass over the
    lattice index's flat (pattern, item) entries.
    """
    if k <= 0:
        return []
    checkpoint("kernel.find_corrective_items")
    index = result.lattice_index()
    div = result.divergence_vector()
    rows = index.row_of_entry
    parents = index.parent_rows

    d_row = div[rows]
    with np.errstate(invalid="ignore"):
        parent_div = np.where(parents >= 0, div[parents], np.nan)
        factor = np.abs(parent_div) - np.abs(d_row)
        mask = (
            (index.lengths[rows] >= 2)
            & ~np.isnan(d_row)
            & ~np.isnan(parent_div)
            & (factor > min_factor)
        )
    candidates = np.nonzero(mask)[0]
    if candidates.size == 0:
        return []
    cand_factor = factor[candidates]
    if candidates.size > k:
        # Keep every candidate tied with the k-th largest factor so the
        # deterministic tie-break below sees the full boundary group.
        kth = np.partition(cand_factor, candidates.size - k)[
            candidates.size - k
        ]
        keep = cand_factor >= kth
        candidates = candidates[keep]
        cand_factor = cand_factor[keep]

    counts = result._count_matrix
    base_counts = counts[parents[candidates]]
    corr_counts = counts[rows[candidates]]
    mu_b, var_b = _beta_moments_vec(base_counts[:, 1], base_counts[:, 2])
    mu_c, var_c = _beta_moments_vec(corr_counts[:, 1], corr_counts[:, 2])
    diff = np.abs(mu_b - mu_c)
    denom = np.sqrt(var_b + var_c)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_stats = np.where(
            denom == 0.0, np.where(diff > 0.0, np.inf, 0.0), diff / denom
        )

    keys = result._keys
    found = [
        CorrectiveItem(
            base=result.itemset_of(keys[int(parents[t])]),
            item=result.item_of(int(index.items_flat[t])),
            base_divergence=float(parent_div[t]),
            corrected_divergence=float(d_row[t]),
            corrective_factor=float(factor[t]),
            t_statistic=float(t_stats[i]),
        )
        for i, t in enumerate(candidates)
    ]
    return _sort_corrections(found)[:k]


def _beta_moments_vec(
    k_pos: np.ndarray, k_neg: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`repro.core.significance.beta_moments`."""
    k_pos = k_pos.astype(np.float64)
    k_neg = k_neg.astype(np.float64)
    total = k_pos + k_neg
    mean = (k_pos + 1.0) / (total + 2.0)
    variance = (k_pos + 1.0) * (k_neg + 1.0) / (
        (total + 2.0) ** 2 * (total + 3.0)
    )
    return mean, variance


def find_corrective_items_reference(
    result: PatternDivergenceResult,
    k: int = 10,
    min_factor: float = 0.0,
) -> list[CorrectiveItem]:
    """Dict-walk oracle for :func:`find_corrective_items` (kept verbatim
    up to the shared deterministic tie-break)."""
    found: list[CorrectiveItem] = []
    for key in result.frequent:
        if len(key) < 2:
            continue  # the base pattern must be non-empty
        div_k = result.divergence_of_key(key)
        if math.isnan(div_k):
            continue
        for alpha in key:
            base_key = key - {alpha}
            div_base = result.divergence_of_key(base_key)
            if math.isnan(div_base):
                continue
            factor = abs(div_base) - abs(div_k)
            if factor <= min_factor:
                continue
            base_counts = result.frequent.counts(base_key)
            corr_counts = result.frequent.counts(key)
            mu_b, var_b = beta_moments(int(base_counts[1]), int(base_counts[2]))
            mu_c, var_c = beta_moments(int(corr_counts[1]), int(corr_counts[2]))
            found.append(
                CorrectiveItem(
                    base=result.itemset_of(base_key),
                    item=result.item_of(alpha),
                    base_divergence=div_base,
                    corrected_divergence=div_k,
                    corrective_factor=factor,
                    t_statistic=welch_t_statistic(mu_b, var_b, mu_c, var_c),
                )
            )
    return _sort_corrections(found)[:k]


def is_corrective(
    result: PatternDivergenceResult, base: Itemset, item: Item
) -> bool:
    """Whether ``item`` is corrective for ``base`` (both must be frequent)."""
    div_base = result.divergence_of(base)
    div_ext = result.divergence_of(base.union(item))
    if math.isnan(div_base) or math.isnan(div_ext):
        return False
    return abs(div_ext) < abs(div_base)
