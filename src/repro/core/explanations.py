"""Natural-language summaries of divergence findings.

Turns the numeric outputs — pattern records, Shapley contributions,
corrective items, comparison shifts — into the sentences a model-audit
report or a PR comment would contain. Deterministic templates, no
generation: the numbers always come straight from the result objects.
"""

from __future__ import annotations

import math

from repro.core.compare import PatternShift
from repro.core.corrective import CorrectiveItem
from repro.core.items import Item, Itemset
from repro.core.result import PatternDivergenceResult, PatternRecord

_METRIC_PHRASES = {
    "fpr": "false-positive rate",
    "fnr": "false-negative rate",
    "error": "error rate",
    "accuracy": "accuracy",
    "tpr": "true-positive rate",
    "tnr": "true-negative rate",
    "ppv": "precision",
    "fdr": "false-discovery rate",
    "for": "false-omission rate",
    "npv": "negative predictive value",
    "posr": "positive rate",
    "predr": "predicted-positive rate",
}


def metric_phrase(metric: str) -> str:
    """Readable name of a metric id."""
    return _METRIC_PHRASES.get(metric, metric)


def describe_pattern(
    result: PatternDivergenceResult, record: PatternRecord
) -> str:
    """One-sentence description of a divergent pattern."""
    phrase = metric_phrase(result.metric)
    if math.isnan(record.divergence):
        return (
            f"For instances with {record.itemset} "
            f"({record.support:.0%} of the data), the {phrase} is undefined "
            f"(no in-scope instances)."
        )
    direction = "higher" if record.divergence > 0 else "lower"
    points = abs(record.divergence) * 100
    confidence = _confidence_phrase(record.t_statistic)
    return (
        f"For instances with {record.itemset} "
        f"({record.support:.0%} of the data), the {phrase} is "
        f"{record.rate:.1%} — {points:.1f} points {direction} than the "
        f"overall {result.global_rate:.1%} ({confidence}, t={record.t_statistic:.1f})."
    )


def describe_contributions(
    pattern: Itemset, contributions: dict[Item, float]
) -> str:
    """Summarize which items of a pattern drive its divergence."""
    if not contributions:
        return "The empty pattern has no item contributions."
    ranked = sorted(contributions.items(), key=lambda kv: -abs(kv[1]))
    total = sum(contributions.values())
    leader, leader_value = ranked[0]
    parts = [
        f"Within ({pattern}), {leader} carries the largest share of the "
        f"divergence ({leader_value:+.3f} of {total:+.3f})."
    ]
    negatives = [item for item, value in ranked if value < -1e-9]
    if negatives:
        listed = ", ".join(str(i) for i in negatives)
        parts.append(f"{listed} pushes the divergence back toward zero.")
    marginal = [
        item
        for item, value in ranked[1:]
        if abs(value) < 0.15 * abs(leader_value)
    ]
    if marginal:
        listed = ", ".join(str(i) for i in marginal)
        parts.append(f"{listed} contributes only marginally.")
    return " ".join(parts)


def explain_top_k(
    result: PatternDivergenceResult,
    k: int = 5,
    epsilon: float | None = None,
) -> list[dict]:
    """Shapley explanation table for the top-``k`` divergent patterns.

    Each entry pairs a :class:`PatternRecord`'s headline numbers with
    the exact Shapley contributions of its items and the templated
    sentence describing them. All ``k`` patterns are resolved with one
    batched subset lookup (``shapley_batch``), so the table costs one
    pass over the lattice index rather than ``k`` dict walks. With
    ``epsilon`` set, the table ranks the ε-pruned patterns instead.
    """
    records = (
        result.pruned(epsilon)[:k] if epsilon is not None else result.top_k(k)
    )
    tables = result.shapley_batch([r.itemset for r in records])
    return [
        {
            "itemset": record.itemset,
            "divergence": record.divergence,
            "support": record.support,
            "t_statistic": record.t_statistic,
            "contributions": contributions,
            "description": describe_contributions(
                record.itemset, contributions
            ),
        }
        for record, contributions in zip(records, tables)
    ]


def describe_corrective(corrective: CorrectiveItem, metric: str) -> str:
    """Summarize one corrective-item observation."""
    phrase = metric_phrase(metric)
    return (
        f"Adding {corrective.item} to ({corrective.base}) shrinks the "
        f"{phrase} divergence from {corrective.base_divergence:+.3f} to "
        f"{corrective.corrected_divergence:+.3f} "
        f"(corrective factor {corrective.corrective_factor:.3f})."
    )


def describe_shift(shift: PatternShift, metric: str) -> str:
    """Summarize one model-comparison shift."""
    phrase = metric_phrase(metric)
    got = "worse" if abs(shift.divergence_b) > abs(shift.divergence_a) else "better"
    return (
        f"On ({shift.itemset}), the {phrase} divergence moved from "
        f"{shift.divergence_a:+.3f} to {shift.divergence_b:+.3f} "
        f"({got}; t={shift.t_statistic:.1f})."
    )


def summarize_result(
    result: PatternDivergenceResult, k: int = 3, epsilon: float | None = 0.05
) -> str:
    """Multi-sentence executive summary of an exploration."""
    phrase = metric_phrase(result.metric)
    lines = [
        f"Explored {len(result) - 1} subgroups with support >= "
        f"{result.min_support:g}; overall {phrase} is {result.global_rate:.1%}."
    ]
    records = (
        result.pruned(epsilon)[:k] if epsilon is not None else result.top_k(k)
    )
    for record in records:
        lines.append(describe_pattern(result, record))
    corrective = result.corrective_items(1)
    if corrective and corrective[0].corrective_factor > 0.02:
        lines.append(describe_corrective(corrective[0], result.metric))
    return "\n".join(lines)


def _confidence_phrase(t_statistic: float) -> str:
    if t_statistic >= 5:
        return "overwhelming evidence"
    if t_statistic >= 3:
        return "strong evidence"
    if t_statistic >= 2:
        return "moderate evidence"
    return "weak evidence"
