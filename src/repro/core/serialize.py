"""JSON serialization of divergence results and lattices.

Lets a divergence exploration be persisted, diffed across model
versions, or handed to external visualization tooling (the DivExplorer
demo UI consumes exactly this kind of payload). Round-trip fidelity is
tested: ``result_from_json(result_to_json(r))`` reproduces every
pattern's counts, and therefore every derived statistic.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.core.lattice import DivergenceLattice
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError
from repro.fpm.miner import FrequentItemsets
from repro.fpm.transactions import ItemCatalog

FORMAT_VERSION = 1


def result_to_json(result: PatternDivergenceResult) -> str:
    """Serialize a divergence result (catalog + counts) to JSON."""
    payload: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "metric": result.metric,
        "min_support": result.min_support,
        "n_rows": result.frequent.n_rows,
        "catalog": {
            "attributes": result.catalog.attributes,
            "categories": [
                [_plain(v) for v in cats] for cats in result.catalog.categories
            ],
        },
        "patterns": [
            {
                "items": [int(i) for i in sorted(key)],
                "counts": [int(c) for c in counts],
            }
            for key, counts in result.frequent.items()
        ],
    }
    return json.dumps(payload)


def result_from_json(text: str) -> PatternDivergenceResult:
    """Rebuild a divergence result serialized by :func:`result_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid result JSON: {exc}") from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        catalog = ItemCatalog(
            payload["catalog"]["attributes"], payload["catalog"]["categories"]
        )
        counts = {
            frozenset(entry["items"]): np.asarray(entry["counts"], dtype=np.int64)
            for entry in payload["patterns"]
        }
        frequent = FrequentItemsets(
            counts, payload["n_rows"], payload["min_support"]
        )
        return PatternDivergenceResult(
            frequent, catalog, payload["metric"], payload["min_support"]
        )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed result JSON: missing {exc}") from exc


def lattice_to_dot(lattice: DivergenceLattice, threshold: float | None = None) -> str:
    """Render a lattice as Graphviz DOT.

    Corrective nodes are drawn as diamonds (the UI's rhombus); nodes at
    or above ``threshold`` are filled red squares, matching Fig. 11.
    """
    lines = [
        "digraph lattice {",
        "  rankdir=TB;",
        '  node [shape=ellipse, fontname="Helvetica"];',
    ]
    ids = {node: f"n{i}" for i, node in enumerate(lattice.graph.nodes)}
    for node, data in lattice.graph.nodes(data=True):
        label = f"{node}\\nΔ={data['divergence']:+.3f}"
        attrs = [f'label="{label}"']
        if data["corrective"]:
            attrs.append("shape=diamond")
            attrs.append('color="steelblue"')
        if (
            threshold is not None
            and not _is_nan(data["divergence"])
            and data["divergence"] >= threshold
        ):
            attrs.append("shape=box")
            attrs.append('style=filled fillcolor="salmon"')
        lines.append(f"  {ids[node]} [{', '.join(attrs)}];")
    for parent, child, data in lattice.graph.edges(data=True):
        lines.append(
            f'  {ids[parent]} -> {ids[child]} [label="{data["delta"]:+.3f}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def _plain(value: Any) -> Any:
    """Coerce numpy scalars to plain JSON-compatible Python values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def _is_nan(x: float) -> bool:
    return x != x
