"""Items and itemsets (paper Sec. 3.1).

An :class:`Item` is an attribute equality ``a = c``; an :class:`Itemset`
is a set of items over *distinct* attributes, displayed as the
conjunction of its items (``"age=25-45, sex=Male"``). Both are frozen,
hashable value objects usable as dict keys.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.exceptions import SchemaError


@dataclass(frozen=True, order=True)
class Item:
    """One attribute equality ``attribute = value``."""

    attribute: str
    value: Any

    def __str__(self) -> str:
        return f"{self.attribute}={self.value}"


class Itemset:
    """An immutable set of items over pairwise distinct attributes.

    Supports set-like operations used throughout divergence analysis:
    membership, union with an item, difference, subset enumeration.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Item] = ()) -> None:
        items = tuple(sorted(set(items)))
        attrs = [it.attribute for it in items]
        if len(set(attrs)) != len(attrs):
            raise SchemaError(
                f"itemset has repeated attributes: {', '.join(map(str, items))}"
            )
        object.__setattr__(self, "_items", items)

    # Itemset is conceptually frozen; block accidental attribute writes.
    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Itemset is immutable")

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, Any]]) -> "Itemset":
        """Build from ``(attribute, value)`` pairs."""
        return cls(Item(a, v) for a, v in pairs)

    @classmethod
    def parse(cls, text: str) -> "Itemset":
        """Parse ``"a=1, b=x"`` notation (values stay strings)."""
        if not text.strip():
            return cls()
        pairs = []
        for chunk in text.split(","):
            if "=" not in chunk:
                raise SchemaError(f"cannot parse item {chunk!r}")
            attr, value = chunk.split("=", 1)
            pairs.append((attr.strip(), value.strip()))
        return cls.from_pairs(pairs)

    # ------------------------------------------------------------------

    @property
    def items(self) -> tuple[Item, ...]:
        """The items, sorted by attribute then value."""
        return self._items

    @property
    def attributes(self) -> frozenset[str]:
        """``attr(I)``: the attributes referenced by this itemset."""
        return frozenset(it.attribute for it in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._items

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Itemset) and self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __le__(self, other: "Itemset") -> bool:
        """Subset relation."""
        return set(self._items) <= set(other._items)

    def __lt__(self, other: "Itemset") -> bool:
        return set(self._items) < set(other._items)

    def union(self, item: Item) -> "Itemset":
        """Return ``I ∪ {item}`` (raises if the attribute repeats)."""
        return Itemset(self._items + (item,))

    def difference(self, item: Item) -> "Itemset":
        """Return ``I \\ {item}``."""
        return Itemset(it for it in self._items if it != item)

    def subsets(self, proper: bool = False) -> Iterator["Itemset"]:
        """Yield all (optionally proper) subsets, smallest first."""
        n = len(self._items)
        top = (1 << n) - 1
        for mask in range(top + 1):
            if proper and mask == top:
                continue
            yield Itemset(
                self._items[b] for b in range(n) if mask >> b & 1
            )

    def __str__(self) -> str:
        return ", ".join(str(it) for it in self._items) if self._items else "<empty>"

    def __repr__(self) -> str:
        return f"Itemset({str(self)})"


EMPTY_ITEMSET = Itemset()
