"""Global item divergence (paper Def. 4.3, Eq. 6/8).

The global divergence of an itemset ``I`` generalizes the Shapley value
to the itemset lattice: it aggregates the marginal effect of adding
``I`` to every context ``J`` over disjoint attributes, weighted by

    |B|! (|A|-|B|-|I|)! / ( |A|!  Π_{b ∈ B ∪ attr(I)} m_b )

where ``B = attr(J)`` and ``m_b`` the domain size of attribute ``b``.
The support-bounded approximation (Eq. 8) restricts the sum to the
contexts whose extension ``J ∪ I`` is frequent, all of which are
available from the complete exploration.

The single-item case — the paper's headline "global item divergence" —
is one scatter-add over the columnar lattice index: every table row
``K`` contributes ``w(K)·[Δ(K) − Δ(K \\ α)]`` to each of its items
``α``, and both the weights ``w(K)`` and the parent-row gathers are
precomputed. The original per-pattern dict walk is retained as
:func:`global_item_divergence_reference`, the oracle the vectorized
kernel is property-tested against.
"""

from __future__ import annotations

from math import factorial

import numpy as np

from repro.core.items import Item, Itemset
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError
from repro.obs import span
from repro.resilience import checkpoint


@span("kernel.global_item_divergence")
def global_item_divergence(
    result: PatternDivergenceResult,
) -> dict[Item, float]:
    """``Δ̃^g(α, s)`` for every frequent item ``α``, fully vectorized.

    For each frequent itemset ``K`` and each ``α ∈ K``, the context is
    ``J = K \\ {α}`` (``|B| = |K| - 1``) and the term contributes
    ``w(K) · [Δ(K) − Δ(J)]`` to the global divergence of ``α``. Over
    the lattice index this is one gather (parent divergences), one
    elementwise multiply and one ``bincount`` scatter — no per-pattern
    hashing.
    """
    checkpoint("kernel.global_item_divergence")
    index = result.lattice_index()
    div0 = result.divergence_vector(zero_nan=True)
    parent_div = np.where(
        index.parent_rows >= 0, div0[index.parent_rows], 0.0
    )
    terms = index.weights[index.row_of_entry] * (
        div0[index.row_of_entry] - parent_div
    )
    totals = np.bincount(
        index.items_flat, weights=terms, minlength=result.catalog.n_items
    )
    present = np.unique(index.items_flat)
    return {result.item_of(int(a)): float(totals[a]) for a in present}


def global_item_divergence_reference(
    result: PatternDivergenceResult,
) -> dict[Item, float]:
    """Dict-walk oracle for :func:`global_item_divergence`.

    One frozenset allocation and divergence-map probe per (pattern,
    item) pair; kept verbatim as the correctness reference for the
    vectorized kernel.
    """
    n_attrs = len(result.catalog.attributes)
    fact = [factorial(i) for i in range(n_attrs + 1)]
    n_fact = fact[n_attrs]
    cards = result.catalog.cardinalities
    column_of = result.catalog.column_of

    totals: dict[int, float] = {}
    for key in result.frequent:
        k = len(key)
        if k == 0 or k > n_attrs:
            continue
        prod_m = 1
        for item_id in key:
            prod_m *= cards[column_of(item_id)]
        weight = fact[k - 1] * fact[n_attrs - k] / (n_fact * prod_m)
        div_k = result.divergence_or_zero(key)
        for alpha in key:
            div_j = result.divergence_or_zero(key - {alpha})
            totals[alpha] = totals.get(alpha, 0.0) + weight * (div_k - div_j)
    return {result.item_of(a): v for a, v in sorted(totals.items())}


def global_divergence_of_itemset(
    result: PatternDivergenceResult, itemset: Itemset
) -> float:
    """``Δ̃^g(I, s)`` of an arbitrary (frequent) itemset ``I`` (Eq. 8)."""
    target = result.key_of(itemset)
    if target not in result.frequent:
        raise ReproError(
            f"pattern ({itemset}) is not frequent at support {result.min_support}"
        )
    size_i = len(target)
    if size_i == 0:
        return 0.0
    n_attrs = len(result.catalog.attributes)
    fact = [factorial(i) for i in range(n_attrs + 1)]
    n_fact = fact[n_attrs]
    cards = result.catalog.cardinalities
    column_of = result.catalog.column_of

    total = 0.0
    for key in result.frequent:
        if not target <= key:
            continue
        context = key - target
        size_b = len(context)
        if size_b + size_i > n_attrs:
            continue
        prod_m = 1
        for item_id in key:  # attrs of B ∪ attr(I) == attrs of K
            prod_m *= cards[column_of(item_id)]
        weight = fact[size_b] * fact[n_attrs - size_b - size_i] / (n_fact * prod_m)
        total += weight * (
            result.divergence_or_zero(key) - result.divergence_or_zero(context)
        )
    return total


def individual_item_divergence(
    result: PatternDivergenceResult,
) -> dict[Item, float]:
    """Plain per-item divergence ``Δ(α)`` for every frequent item.

    This is the naïve "in isolation" measurement the paper contrasts
    global divergence against (Sec. 4.4).
    """
    out: dict[Item, float] = {}
    for item_id in range(result.catalog.n_items):
        key = frozenset((item_id,))
        if key in result.frequent:
            out[result.item_of(item_id)] = result.divergence_of_key(key)
    return out
