"""Global item divergence (paper Def. 4.3, Eq. 6/8).

The global divergence of an itemset ``I`` generalizes the Shapley value
to the itemset lattice: it aggregates the marginal effect of adding
``I`` to every context ``J`` over disjoint attributes, weighted by

    |B|! (|A|-|B|-|I|)! / ( |A|!  Π_{b ∈ B ∪ attr(I)} m_b )

where ``B = attr(J)`` and ``m_b`` the domain size of attribute ``b``.
The support-bounded approximation (Eq. 8) restricts the sum to the
contexts whose extension ``J ∪ I`` is frequent, all of which are
available from the complete exploration.

The single-item case — the paper's headline "global item divergence" —
is computed for *all* items in one pass over the frequent-itemset table.
"""

from __future__ import annotations

from math import factorial

from repro.core.items import Item, Itemset
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError


def global_item_divergence(
    result: PatternDivergenceResult,
) -> dict[Item, float]:
    """``Δ̃^g(α, s)`` for every frequent item ``α``, in one lattice pass.

    For each frequent itemset ``K`` and each ``α ∈ K``, the context is
    ``J = K \\ {α}`` (``|B| = |K| - 1``) and the term contributes
    ``w(K) · [Δ(K) − Δ(J)]`` to the global divergence of ``α``, where
    the weight ``w(K)`` depends only on ``|K|`` and the cardinalities of
    ``attr(K)``.
    """
    n_attrs = len(result.catalog.attributes)
    fact = [factorial(i) for i in range(n_attrs + 1)]
    n_fact = fact[n_attrs]
    cards = result.catalog.cardinalities
    column_of = result.catalog.column_of

    totals: dict[int, float] = {}
    for key in result.frequent:
        k = len(key)
        if k == 0 or k > n_attrs:
            continue
        prod_m = 1
        for item_id in key:
            prod_m *= cards[column_of(item_id)]
        weight = fact[k - 1] * fact[n_attrs - k] / (n_fact * prod_m)
        div_k = result.divergence_or_zero(key)
        for alpha in key:
            div_j = result.divergence_or_zero(key - {alpha})
            totals[alpha] = totals.get(alpha, 0.0) + weight * (div_k - div_j)
    return {result.item_of(a): v for a, v in sorted(totals.items())}


def global_divergence_of_itemset(
    result: PatternDivergenceResult, itemset: Itemset
) -> float:
    """``Δ̃^g(I, s)`` of an arbitrary (frequent) itemset ``I`` (Eq. 8)."""
    target = result.key_of(itemset)
    if target not in result.frequent:
        raise ReproError(
            f"pattern ({itemset}) is not frequent at support {result.min_support}"
        )
    size_i = len(target)
    if size_i == 0:
        return 0.0
    n_attrs = len(result.catalog.attributes)
    fact = [factorial(i) for i in range(n_attrs + 1)]
    n_fact = fact[n_attrs]
    cards = result.catalog.cardinalities
    column_of = result.catalog.column_of

    total = 0.0
    for key in result.frequent:
        if not target <= key:
            continue
        context = key - target
        size_b = len(context)
        if size_b + size_i > n_attrs:
            continue
        prod_m = 1
        for item_id in key:  # attrs of B ∪ attr(I) == attrs of K
            prod_m *= cards[column_of(item_id)]
        weight = fact[size_b] * fact[n_attrs - size_b - size_i] / (n_fact * prod_m)
        total += weight * (
            result.divergence_or_zero(key) - result.divergence_or_zero(context)
        )
    return total


def individual_item_divergence(
    result: PatternDivergenceResult,
) -> dict[Item, float]:
    """Plain per-item divergence ``Δ(α)`` for every frequent item.

    This is the naïve "in isolation" measurement the paper contrasts
    global divergence against (Sec. 4.4).
    """
    out: dict[Item, float] = {}
    for item_id in range(result.catalog.n_items):
        key = frozenset((item_id,))
        if key in result.frequent:
            out[result.item_of(item_id)] = result.divergence_of_key(key)
    return out
