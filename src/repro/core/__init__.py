"""Core DivExplorer functionality: divergence over frequent itemsets.

This subpackage implements the paper's contribution: itemset divergence
(Sec. 3), Bayesian statistical significance (Sec. 3.3), Shapley-based
local item contributions (Sec. 4.1), corrective items (Sec. 4.2), global
item divergence (Sec. 4.3), the mining algorithm (Sec. 5), redundancy
pruning (Sec. 3.5) and lattice exploration (Sec. 6.4).
"""

from repro.core.compare import (
    CompareResult,
    PatternShift,
    compare_results,
    compare_results_reference,
    delta_columns,
    delta_divergence_score,
    explore_compare,
    regressions,
    regressions_reference,
    resolve_models,
)
from repro.core.continuous import (
    ContinuousDivergenceExplorer,
    ContinuousDivergenceResult,
    ContinuousPatternRecord,
)
from repro.core.corrective import CorrectiveItem, find_corrective_items
from repro.core.divergence import DivergenceExplorer
from repro.core.global_divergence import (
    global_divergence_of_itemset,
    global_item_divergence,
    individual_item_divergence,
)
from repro.core.explanations import explain_top_k
from repro.core.items import Item, Itemset
from repro.core.lattice import DivergenceLattice
from repro.core.lattice_index import LatticeIndex
from repro.core.multi import explore_multi
from repro.core.outcomes import OUTCOME_METRICS, OutcomeFunction, outcome_metric
from repro.core.pruning import prune_redundant, redundancy_margins
from repro.core.result import PatternDivergenceResult, PatternRecord
from repro.core.serialize import lattice_to_dot, result_from_json, result_to_json
from repro.core.shapley import shapley_batch, shapley_contributions
from repro.core.significance import (
    beta_moments,
    welch_t_statistic,
    welch_t_statistic_signed,
)

__all__ = [
    "CompareResult",
    "ContinuousDivergenceExplorer",
    "ContinuousDivergenceResult",
    "ContinuousPatternRecord",
    "CorrectiveItem",
    "DivergenceExplorer",
    "DivergenceLattice",
    "Item",
    "Itemset",
    "LatticeIndex",
    "OUTCOME_METRICS",
    "OutcomeFunction",
    "PatternDivergenceResult",
    "PatternRecord",
    "PatternShift",
    "beta_moments",
    "compare_results",
    "compare_results_reference",
    "delta_columns",
    "delta_divergence_score",
    "explain_top_k",
    "explore_compare",
    "explore_multi",
    "find_corrective_items",
    "global_divergence_of_itemset",
    "global_item_divergence",
    "individual_item_divergence",
    "lattice_to_dot",
    "outcome_metric",
    "prune_redundant",
    "redundancy_margins",
    "regressions",
    "regressions_reference",
    "resolve_models",
    "result_from_json",
    "result_to_json",
    "shapley_batch",
    "shapley_contributions",
    "welch_t_statistic",
    "welch_t_statistic_signed",
]
