"""Itemset lattice exploration (paper Sec. 6.4, Fig. 11).

For a divergent pattern of interest ``I``, the lattice contains every
subset of ``I`` as a node (root: empty itemset, leaf: ``I`` itself) with
edges for single-item extensions. Nodes carry their divergence and
support; the lattice flags *corrective* nodes — subsets reached by an
edge that shrinks absolute divergence — and nodes above a user-chosen
divergence threshold, mirroring the highlighting of the DivExplorer UI.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.core.items import Itemset
from repro.core.result import PatternDivergenceResult
from repro.exceptions import ReproError


class DivergenceLattice:
    """The subset lattice of one frequent pattern, as a networkx DiGraph.

    Node keys are :class:`Itemset`; node attributes:

    - ``divergence``: ``Δ_f`` of the subset,
    - ``support``: relative support,
    - ``corrective``: True when *some* incoming edge shrinks ``|Δ|``,
    - edge attribute ``delta``: divergence change along the edge.
    """

    def __init__(self, result: PatternDivergenceResult, itemset: Itemset) -> None:
        key = result.key_of(itemset)
        if key not in result.frequent:
            raise ReproError(
                f"pattern ({itemset}) is not frequent at support "
                f"{result.min_support}"
            )
        self.result = result
        self.itemset = itemset
        self.graph = nx.DiGraph()
        # All 2^n subset rows are resolved against the columnar lattice
        # index in one batched lookup; bit b of the mask order used by
        # ``itemset.subsets()`` corresponds to ``itemset.items[b]``.
        index = result.lattice_index()
        ids = [
            result.catalog.item_id(it.attribute, it.value)
            for it in itemset.items
        ]
        rows = index.subset_rows(ids)
        divergences = result.divergence_vector()
        counts = result._count_matrix
        for mask, subset in enumerate(itemset.subsets()):
            row = int(rows[mask])
            if row < 0:  # unreachable for complete tables (closure)
                raise ReproError(
                    f"pattern ({subset}) is not frequent at support "
                    f"{result.min_support}"
                )
            self.graph.add_node(
                subset,
                divergence=float(divergences[row]),
                support=counts[row, 0] / result.frequent.n_rows,
                corrective=False,
            )
        for subset in itemset.subsets(proper=True):
            remaining = [it for it in itemset if it not in subset]
            for item in remaining:
                child = subset.union(item)
                d_parent = self.graph.nodes[subset]["divergence"]
                d_child = self.graph.nodes[child]["divergence"]
                delta = d_child - d_parent
                self.graph.add_edge(subset, child, delta=delta)
                if (
                    not math.isnan(d_parent)
                    and not math.isnan(d_child)
                    and abs(d_child) < abs(d_parent)
                ):
                    self.graph.nodes[child]["corrective"] = True

    # ------------------------------------------------------------------

    def levels(self) -> list[list[Itemset]]:
        """Nodes grouped by itemset length, root first."""
        by_len: dict[int, list[Itemset]] = {}
        for node in self.graph.nodes:
            by_len.setdefault(len(node), []).append(node)
        return [sorted(by_len[k], key=str) for k in sorted(by_len)]

    def corrective_nodes(self) -> list[Itemset]:
        """Subsets where a corrective phenomenon is observable."""
        return [
            n for n, data in self.graph.nodes(data=True) if data["corrective"]
        ]

    def divergent_nodes(self, threshold: float) -> list[Itemset]:
        """Subsets with divergence >= ``threshold`` (UI red squares)."""
        return [
            n
            for n, data in self.graph.nodes(data=True)
            if not math.isnan(data["divergence"])
            and data["divergence"] >= threshold
        ]

    def divergence(self, subset: Itemset) -> float:
        """Divergence of one lattice node."""
        return float(self.graph.nodes[subset]["divergence"])

    def render(self, threshold: float | None = None) -> str:
        """Plain-text rendering, one lattice level per paragraph.

        Corrective nodes are marked ``<>`` (the UI's rhombus); nodes
        above ``threshold`` are marked ``[]`` (the UI's red square).
        """
        lines: list[str] = []
        for level in self.levels():
            row = []
            for node in level:
                data = self.graph.nodes[node]
                marker = ""
                if data["corrective"]:
                    marker = "<>"
                if (
                    threshold is not None
                    and not math.isnan(data["divergence"])
                    and data["divergence"] >= threshold
                ):
                    marker += "[]"
                row.append(f"{marker}({node}: Δ={data['divergence']:+.3f})")
            lines.append("   ".join(row))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DivergenceLattice(pattern=({self.itemset}), "
            f"nodes={self.graph.number_of_nodes()}, "
            f"corrective={len(self.corrective_nodes())})"
        )
