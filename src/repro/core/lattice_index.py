"""Columnar lattice index over a frequent-itemset table.

The analytics of Sec. 3.5/4 — global item divergence (Eq. 8),
ε-redundancy pruning, corrective items and Shapley contributions — all
reduce to the same access pattern: for a table row ``K``, visit the rows
of its immediate (k−1)-subsets ``K \\ {α}``. Done naively that is one
``frozenset`` allocation and one dict probe per (row, item) pair, i.e.
O(|F|·k) hash traffic per analysis on tables with hundreds of thousands
of patterns.

:class:`LatticeIndex` pays that cost once, columnar-style: every frequent
itemset becomes a row of packed numpy arrays (CSR item lists, lengths,
precomputed Eq. 8 weights) and the parent relation becomes one int array
``parent_rows`` aligned with the flattened item lists. The index is built
in a single vectorized pass: keys are padded into a fixed-width id-sorted
matrix, viewed as raw bytes, sorted once, and every candidate parent is
resolved with one batched ``searchsorted`` — no per-key hashing at all.
Downstream, each analysis is a handful of gathers/scatters over these
arrays (see ``global_divergence``, ``pruning``, ``corrective``,
``shapley``).

The index is immutable, lazily built, and cached on
:class:`~repro.core.result.PatternDivergenceResult` (results never
change, so it is never invalidated).
"""

from __future__ import annotations

from collections.abc import Sequence
from math import factorial

import numpy as np

from repro.fpm.transactions import ItemCatalog
from repro.obs import get_registry, span
from repro.resilience import checkpoint

# Sentinel used while sorting padded rows: real entries are ``id + 1``
# (> 0) and padding is 0, so anything above every real id works.
_PAD_SENTINEL = np.uint32(0xFFFFFFFF)


def _void_view(padded: np.ndarray) -> np.ndarray:
    """View a ``(M, L) uint32`` row matrix as M opaque fixed-size blobs.

    Void scalars compare bytewise, which gives a total order consistent
    between ``argsort`` and ``searchsorted`` — exactly what exact-match
    row lookup needs.
    """
    a = np.ascontiguousarray(padded)
    return a.view(np.dtype((np.void, a.shape[1] * a.dtype.itemsize))).ravel()


class LatticeIndex:
    """Packed subset-lattice adjacency of one frequent-itemset table.

    Attributes (all read-only numpy arrays; ``N`` rows, ``nnz`` total
    items across rows, ``L`` the padded key width):

    - ``lengths``: ``(N,)`` itemset length per row.
    - ``items_ptr``: ``(N+1,)`` CSR offsets into the flat item arrays.
    - ``items_flat``: ``(nnz,)`` item ids, ascending within each row.
    - ``row_of_entry``: ``(nnz,)`` owning row of each flat entry.
    - ``parent_rows``: ``(nnz,)`` row index of ``K \\ {α}`` for the flat
      entry ``(K, α)``; ``-1`` when that subset is not in the table.
    - ``weights``: ``(N,)`` Eq. 8 weight ``w(K)`` — the term every
      ``α ∈ K`` contributes to global item divergence is
      ``w(K)·[Δ(K) − Δ(K \\ α)]``. Zero for the empty row.
    """

    def __init__(self, keys: Sequence[frozenset[int]], catalog: ItemCatalog) -> None:
        with span("lattice_index.build") as build_span:
            self._build(keys, catalog)
        build_span.count("rows", self.n_table_rows)

    def _build(
        self, keys: Sequence[frozenset[int]], catalog: ItemCatalog
    ) -> None:
        checkpoint("lattice_index.build")
        n = len(keys)
        self.n_table_rows = n
        self.lengths = np.fromiter(
            (len(k) for k in keys), dtype=np.int64, count=n
        )
        self.items_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self.lengths, out=self.items_ptr[1:])
        nnz = int(self.items_ptr[-1])
        flat = np.fromiter(
            (i for key in keys for i in key), dtype=np.int64, count=nnz
        )
        self.row_of_entry = np.repeat(np.arange(n, dtype=np.int64), self.lengths)
        # Sort item ids within each row (frozenset iteration order is
        # arbitrary); rows stay contiguous because the row is the
        # primary key.
        order = np.lexsort((flat, self.row_of_entry))
        self.items_flat = flat[order]

        # Fixed-width padded key matrix: entries are id + 1, ascending,
        # zero-padded on the right, so each row has one canonical byte
        # representation.
        self.width = max(1, int(self.lengths.max(initial=0)))
        padded = np.zeros((n, self.width), dtype=np.uint32)
        pos_in_row = np.arange(nnz, dtype=np.int64) - self.items_ptr[
            self.row_of_entry
        ]
        padded[self.row_of_entry, pos_in_row] = self.items_flat.astype(
            np.uint32
        ) + 1
        self._padded = padded
        blobs = _void_view(padded)
        self._blob_order = np.argsort(blobs)
        self._blobs_sorted = blobs[self._blob_order]

        self.parent_rows = self._resolve_parents(padded)
        self.weights = self._eq8_weights(catalog)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _resolve_parents(self, padded: np.ndarray) -> np.ndarray:
        """Row index of every immediate subset, one searchsorted batch
        per (length, deleted position) group."""
        parent_rows = np.full(int(self.items_ptr[-1]), -1, dtype=np.int64)
        width = self.width
        for k in range(1, width + 1):
            rows_k = np.nonzero(self.lengths == k)[0]
            if rows_k.size == 0:
                continue
            sub = padded[rows_k]
            zero_col = np.zeros((rows_k.size, 1), dtype=np.uint32)
            for j in range(k):
                # One abort check per searchsorted batch keeps index
                # construction on huge tables deadline-responsive.
                checkpoint("lattice_index.parents")
                candidate = np.concatenate(
                    [sub[:, :j], sub[:, j + 1 :], zero_col], axis=1
                )
                parent_rows[self.items_ptr[rows_k] + j] = self.rows_of_padded(
                    candidate
                )
        return parent_rows

    def _eq8_weights(self, catalog: ItemCatalog) -> np.ndarray:
        """``w(K) = (k−1)! (|A|−k)! / (|A|! · Π_{a∈attr(K)} m_a)``.

        Items of one itemset cover distinct attributes, so ``k ≤ |A|``
        always; the empty row gets weight 0 (it has no items to credit).
        """
        n_attrs = len(catalog.attributes)
        fact = [float(factorial(i)) for i in range(n_attrs + 1)]
        n_fact = fact[n_attrs]
        numer = np.zeros(self.width + 1, dtype=np.float64)
        for k in range(1, min(self.width, n_attrs) + 1):
            numer[k] = fact[k - 1] * fact[n_attrs - k]
        # Item ids are grouped by attribute, so the domain size of every
        # item's attribute is one repeat away.
        cards = np.asarray(catalog.cardinalities, dtype=np.int64)
        card_of_item = np.repeat(cards, cards).astype(np.float64)
        # Trailing sentinel so reduceat never reads past the end for a
        # zero-length final segment.
        card_flat = np.concatenate([card_of_item[self.items_flat], [1.0]])
        prod_m = np.multiply.reduceat(card_flat, self.items_ptr[:-1])
        weights = np.zeros(self.n_table_rows, dtype=np.float64)
        valid = (self.lengths > 0) & (self.lengths <= n_attrs)
        weights[valid] = numer[self.lengths[valid]] / (
            n_fact * prod_m[valid]
        )
        return weights

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def rows_of_padded(self, padded: np.ndarray) -> np.ndarray:
        """Table rows of padded query keys (``-1`` where absent).

        Queries must use the canonical padding: entries ``id + 1``
        ascending, zeros on the right, width :attr:`width`.
        """
        registry = get_registry()
        registry.counter("lattice_index.lookups").inc()
        registry.counter("lattice_index.keys_looked_up").inc(len(padded))
        queries = _void_view(padded.astype(np.uint32, copy=False))
        pos = np.searchsorted(self._blobs_sorted, queries)
        pos_c = np.minimum(pos, len(self._blobs_sorted) - 1)
        hit = self._blobs_sorted[pos_c] == queries
        return np.where(hit, self._blob_order[pos_c], -1)

    def pad_keys(self, id_rows: np.ndarray) -> np.ndarray:
        """Canonicalize a ``(M, n)`` matrix of ``id + 1`` entries (zeros
        marking gaps, any order) into padded query rows."""
        m, n = id_rows.shape
        # Sorting with zeros mapped to a sentinel pushes the padding to
        # the right while keeping real ids ascending.
        work = np.where(id_rows == 0, _PAD_SENTINEL, id_rows.astype(np.uint32))
        work.sort(axis=1)
        work[work == _PAD_SENTINEL] = 0
        if n <= self.width:
            out = np.zeros((m, self.width), dtype=np.uint32)
            out[:, :n] = work
            return out
        # Keys wider than anything in the table cannot match; replace
        # them with an all-sentinel canary row so the lookup misses.
        out = work[:, : self.width].copy()
        out[work[:, self.width :].any(axis=1)] = _PAD_SENTINEL
        return out

    def subset_rows(self, item_ids: Sequence[int]) -> np.ndarray:
        """Table row of every subset of ``item_ids``, in bitmask order.

        Entry ``m`` is the row of ``{item_ids[b] : bit b set in m}``
        (``-1`` when that subset is not frequent). This is the shared
        resolution step behind batched Shapley and the lattice view:
        one lookup resolves all ``2^n`` subsets.
        """
        ids = np.asarray(item_ids, dtype=np.uint32) + 1
        n = ids.size
        masks = np.arange(1 << n, dtype=np.int64)
        bits = (masks[:, None] >> np.arange(n, dtype=np.int64)) & 1
        vals = np.where(bits.astype(bool), ids[None, :], np.uint32(0))
        return self.rows_of_padded(self.pad_keys(vals))

    def __repr__(self) -> str:
        return (
            f"LatticeIndex(rows={self.n_table_rows}, "
            f"nnz={len(self.items_flat)}, width={self.width})"
        )
