"""Multi-classifier comparison over a shared itemset lattice.

The paper lists *model comparison* among the applications of subgroup
analysis (Sec. 1, citing MLCube and Slice Finder); Boxer (Gleicher et
al.) shows the interactive value of comparing N classifier result sets
over shared subgroups, and Kittler & Zor's *delta divergence* gives a
decision-cognizant incongruence measure between two classifiers. This
module provides both layers:

- :func:`explore_compare` is the shared-lattice engine: the (T, F, ⊥)
  outcome channels of every model are stacked into one channel matrix,
  the dataset is **mined once** (any backend: bitset, FP-growth,
  row-sharded), and one
  :class:`~repro.core.result.PatternDivergenceResult` per model is
  sliced out of the shared frequent-itemset table. Every per-model
  table is bit-identical to an independent
  ``DivergenceExplorer.explore`` of that model, but N models cost
  about one mining pass instead of N. Because every model is counted
  over the *same* frequent set, no pattern can be visible to one
  model's table and invisible to another's.
- :func:`compare_results` / :func:`regressions` align two divergence
  tables (shared-mine or independently mined) and rank the patterns
  whose behaviour changed. Alignment and statistics run as vectorized
  :class:`~repro.core.lattice_index.LatticeIndex` kernels; the
  historical dict-walk implementations are kept as
  :func:`compare_results_reference` / :func:`regressions_reference`
  oracles, pinned bit-identical by the test suite.

Two historical blind spots are fixed here. First, the old loop walked
``result_a.frequent`` only, so a pattern frequent solely under model B
(possible whenever the two tables come from different supports or
different data) was silently invisible; both paths now take the *union*
of the keys and flag one-sided patterns via ``in_a``/``in_b``. Second,
``PatternShift.t_statistic`` was the unsigned Welch magnitude, so an
improvement and a regression of equal size were indistinguishable; it
is now signed (positive = B's subgroup rate above A's, the same
direction as ``shift``), with ``min_t`` applied to its absolute value.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.core.divergence import DivergenceExplorer, _class_array
from repro.core.items import Itemset
from repro.core.outcomes import BOTTOM, TRUE, outcome_channels, outcome_metric
from repro.core.result import PatternDivergenceResult
from repro.core.significance import (
    beta_moments,
    welch_t_statistic_signed,
    welch_t_statistics_pair,
)
from repro.exceptions import ReproError
from repro.fpm.miner import FrequentItemsets
from repro.fpm.transactions import TransactionDataset
from repro.obs import get_registry, span
from repro.resilience import CancelToken, Deadline, cancel_scope, checkpoint
from repro.tabular.table import Table

_NAN = float("nan")


@dataclass(frozen=True)
class PatternShift:
    """One pattern's change between two models.

    ``t_statistic`` is the *signed* Beta-posterior Welch statistic of
    the two subgroup rates (Sec. 3.3): positive when model B's rate
    exceeds model A's, i.e. the same sign as ``shift``.
    ``delta_divergence`` is the decision-cognizant incongruence score
    (see :func:`delta_divergence_score`). Patterns frequent in only one
    table carry NaN statistics on the missing side; ``in_a``/``in_b``
    say which side is populated.
    """

    itemset: Itemset
    divergence_a: float
    divergence_b: float
    rate_a: float
    rate_b: float
    t_statistic: float
    delta_divergence: float = _NAN
    in_a: bool = True
    in_b: bool = True

    @property
    def shift(self) -> float:
        """Signed change in divergence (B minus A)."""
        return self.divergence_b - self.divergence_a

    @property
    def one_sided(self) -> bool:
        """Whether the pattern is frequent in only one of the tables."""
        return not (self.in_a and self.in_b)

    def as_row(self) -> dict[str, object]:
        """JSON-ready row (floats raw; sanitize NaN at the boundary)."""
        return {
            "itemset": str(self.itemset),
            "divergence_a": self.divergence_a,
            "divergence_b": self.divergence_b,
            "shift": self.shift,
            "rate_a": self.rate_a,
            "rate_b": self.rate_b,
            "t": self.t_statistic,
            "delta_divergence": self.delta_divergence,
            "in_a": self.in_a,
            "in_b": self.in_b,
        }

    def __str__(self) -> str:
        if self.one_sided:
            side = "A" if self.in_a else "B"
            div = self.divergence_a if self.in_a else self.divergence_b
            return (
                f"({self.itemset}) only frequent under model {side} "
                f"(Δ {div:+.3f})"
            )
        return (
            f"({self.itemset}) Δ {self.divergence_a:+.3f} -> "
            f"{self.divergence_b:+.3f} (shift {self.shift:+.3f}, "
            f"t={self.t_statistic:+.1f}, δ={self.delta_divergence:.3f})"
        )


def delta_divergence_score(
    rate_a: float, divergence_a: float, rate_b: float, divergence_b: float
) -> float:
    """Decision-cognizant incongruence of two models on one subgroup.

    After Kittler & Zor's delta divergence: classifier disagreement
    only signals trouble when the models are *incongruent* about the
    direction of the anomaly. The score is the rate gap
    ``|rate_b - rate_a|``, gated to the decision-cognizant case where
    the divergences point in opposite directions (one model's subgroup
    behaviour sits above its global rate while the other's sits below);
    congruent subgroups — both better or both worse than their global
    rates — score 0. NaN when either side is unmeasurable.
    """
    if math.isnan(divergence_a) or math.isnan(divergence_b):
        return _NAN
    if divergence_a * divergence_b < 0.0:
        return abs(rate_b - rate_a)
    return 0.0


# ----------------------------------------------------------------------
# pairwise comparison of two divergence tables
# ----------------------------------------------------------------------


def _check_compatible(
    result_a: PatternDivergenceResult, result_b: PatternDivergenceResult
) -> None:
    if result_a.metric != result_b.metric:
        raise ReproError(
            f"cannot compare different metrics: "
            f"{result_a.metric!r} vs {result_b.metric!r}"
        )
    if result_a.catalog.attributes != result_b.catalog.attributes or (
        result_a.catalog.categories != result_b.catalog.categories
    ):
        raise ReproError("catalogs differ; explore the same schema first")


def _order_key(shift: PatternShift) -> tuple[int, float]:
    """Shared ordering contract of :func:`compare_results`.

    Measurable shifts first, by |shift| descending; one-sided patterns
    after, by the |divergence| of their populated side descending. Ties
    keep generation order (stable sorts on both paths): A's table order,
    then B-only patterns in B's table order.
    """
    if shift.one_sided:
        present = shift.divergence_a if shift.in_a else shift.divergence_b
        return (1, -abs(present))
    return (0, -abs(shift.shift))


def _iter_shifts_reference(
    result_a: PatternDivergenceResult, result_b: PatternDivergenceResult
):
    """Dict-walk generation of every comparable pattern, unsorted.

    Walks the *union* of the two frequent sets: A's patterns in table
    order (two-sided where B also has the pattern), then the patterns
    frequent only under B. Rows with an unmeasurable (all-BOTTOM) rate
    on a populated side are skipped.
    """
    for key in result_a.frequent:
        if len(key) == 0:
            continue
        rec_a = result_a.record_for_key(key)
        if math.isnan(rec_a.divergence):
            continue
        if key in result_b.frequent:
            rec_b = result_b.record_for_key(key)
            if math.isnan(rec_b.divergence):
                continue
            mu_a, var_a = beta_moments(rec_a.t_count, rec_a.f_count)
            mu_b, var_b = beta_moments(rec_b.t_count, rec_b.f_count)
            yield PatternShift(
                itemset=rec_a.itemset,
                divergence_a=rec_a.divergence,
                divergence_b=rec_b.divergence,
                rate_a=rec_a.rate,
                rate_b=rec_b.rate,
                t_statistic=welch_t_statistic_signed(
                    mu_b, var_b, mu_a, var_a
                ),
                delta_divergence=delta_divergence_score(
                    rec_a.rate, rec_a.divergence, rec_b.rate, rec_b.divergence
                ),
            )
        else:
            yield PatternShift(
                itemset=rec_a.itemset,
                divergence_a=rec_a.divergence,
                divergence_b=_NAN,
                rate_a=rec_a.rate,
                rate_b=_NAN,
                t_statistic=_NAN,
                in_b=False,
            )
    for key in result_b.frequent:
        if len(key) == 0 or key in result_a.frequent:
            continue
        rec_b = result_b.record_for_key(key)
        if math.isnan(rec_b.divergence):
            continue
        yield PatternShift(
            itemset=rec_b.itemset,
            divergence_a=_NAN,
            divergence_b=rec_b.divergence,
            rate_a=_NAN,
            rate_b=rec_b.rate,
            t_statistic=_NAN,
            in_a=False,
        )


def compare_results_reference(
    result_a: PatternDivergenceResult,
    result_b: PatternDivergenceResult,
    k: int = 10,
    min_t: float = 0.0,
) -> list[PatternShift]:
    """Dict-walk oracle for :func:`compare_results`.

    Retained as the readable specification the vectorized engine is
    pinned bit-identical against; use :func:`compare_results` in
    production code.
    """
    _check_compatible(result_a, result_b)
    shifts = [
        s
        for s in _iter_shifts_reference(result_a, result_b)
        if s.one_sided or abs(s.t_statistic) >= min_t
    ]
    shifts.sort(key=_order_key)
    return shifts[: max(int(k), 0)]


def regressions_reference(
    result_a: PatternDivergenceResult,
    result_b: PatternDivergenceResult,
    k: int = 10,
    min_t: float = 2.0,
) -> list[PatternShift]:
    """Dict-walk oracle for :func:`regressions`.

    One pass over the generated shifts — the significance gate and the
    worse-under-B filter apply together, no sentinel ``k``.
    """
    _check_compatible(result_a, result_b)
    worse = [
        s
        for s in _iter_shifts_reference(result_a, result_b)
        if not s.one_sided
        and abs(s.t_statistic) >= min_t
        and abs(s.divergence_b) > abs(s.divergence_a)
    ]
    worse.sort(key=lambda s: -(abs(s.divergence_b) - abs(s.divergence_a)))
    return worse[: max(int(k), 0)]


class _AlignedPair(NamedTuple):
    """Vectorized alignment of two divergence tables.

    Measurable (present and defined on both sides) patterns come as
    parallel arrays in A's table order; one-sided patterns as row
    indices into their own table, in that table's order.
    """

    a_rows: np.ndarray
    b_rows: np.ndarray
    div_a: np.ndarray
    div_b: np.ndarray
    rate_a: np.ndarray
    rate_b: np.ndarray
    t: np.ndarray
    delta: np.ndarray
    only_a_rows: np.ndarray
    only_b_rows: np.ndarray
    rows_b_of_a: np.ndarray


def _aligned_pair(
    result_a: PatternDivergenceResult, result_b: PatternDivergenceResult
) -> _AlignedPair:
    """Align B's table to A's through the lattice indexes.

    One batched ``searchsorted`` resolves every A-key in B (the mapping
    is the identity when both results share a lattice index, as
    shared-mine siblings do); the complement of the matched B rows is
    the B-only side.
    """
    index_a = result_a.lattice_index()
    index_b = result_b.lattice_index()
    if index_a is index_b:
        rows_b_of_a = np.arange(index_a.n_table_rows, dtype=np.int64)
    else:
        rows_b_of_a = index_b.rows_of_padded(index_b.pad_keys(index_a._padded))
    nonempty_a = index_a.lengths > 0
    matched = rows_b_of_a >= 0

    div_a_all = result_a.divergence_vector()
    div_b_all = result_b.divergence_vector()

    a_rows = np.flatnonzero(nonempty_a & matched)
    b_rows = rows_b_of_a[a_rows]
    da = div_a_all[a_rows]
    db = div_b_all[b_rows]
    measurable = ~np.isnan(da) & ~np.isnan(db)
    a_rows, b_rows = a_rows[measurable], b_rows[measurable]
    da, db = da[measurable], db[measurable]

    counts_a = result_a._count_matrix
    counts_b = result_b._count_matrix
    t = welch_t_statistics_pair(
        counts_b[b_rows, 1],
        counts_b[b_rows, 2],
        counts_a[a_rows, 1],
        counts_a[a_rows, 2],
    )
    ra = result_a._rates[a_rows]
    rb = result_b._rates[b_rows]
    delta = np.where(da * db < 0.0, np.abs(rb - ra), 0.0)

    only_a_rows = np.flatnonzero(nonempty_a & ~matched)
    only_a_rows = only_a_rows[~np.isnan(div_a_all[only_a_rows])]
    matched_b = np.zeros(index_b.n_table_rows, dtype=bool)
    matched_b[rows_b_of_a[matched]] = True
    only_b_rows = np.flatnonzero(~matched_b & (index_b.lengths > 0))
    only_b_rows = only_b_rows[~np.isnan(div_b_all[only_b_rows])]

    return _AlignedPair(
        a_rows, b_rows, da, db, ra, rb, t, delta,
        only_a_rows, only_b_rows, rows_b_of_a,
    )


def _one_sided_shift(
    result: PatternDivergenceResult, row: int, in_a: bool
) -> PatternShift:
    div = float(result.divergence_vector()[row])
    rate = float(result._rates[row])
    return PatternShift(
        itemset=result.itemset_of(result._keys[row]),
        divergence_a=div if in_a else _NAN,
        divergence_b=_NAN if in_a else div,
        rate_a=rate if in_a else _NAN,
        rate_b=_NAN if in_a else rate,
        t_statistic=_NAN,
        in_a=in_a,
        in_b=not in_a,
    )


def _two_sided_shift(
    result_a: PatternDivergenceResult,
    result_b: PatternDivergenceResult,
    pair: _AlignedPair,
    j: int,
) -> PatternShift:
    return PatternShift(
        itemset=result_a.itemset_of(result_a._keys[int(pair.a_rows[j])]),
        divergence_a=float(pair.div_a[j]),
        divergence_b=float(pair.div_b[j]),
        rate_a=float(pair.rate_a[j]),
        rate_b=float(pair.rate_b[j]),
        t_statistic=float(pair.t[j]),
        delta_divergence=float(pair.delta[j]),
    )


def compare_results(
    result_a: PatternDivergenceResult,
    result_b: PatternDivergenceResult,
    k: int = 10,
    min_t: float = 0.0,
) -> list[PatternShift]:
    """Patterns whose divergence shifted most between two explorations.

    Both explorations must use the same metric and compatible catalogs
    (same attributes and categories). The walk covers the *union* of
    the two frequent sets: patterns frequent on both sides are ranked
    by |shift| with a signed Welch ``t`` (positive = B's subgroup rate
    above A's; ``min_t`` gates on |t|), and patterns frequent on only
    one side — invisible to the pre-union implementation — follow,
    flagged via ``in_a``/``in_b`` and ranked by the |divergence| of
    their populated side. Alignment and statistics run as vectorized
    ``LatticeIndex`` kernels; the output is bit-identical to the
    :func:`compare_results_reference` dict walk (to the last ulp for
    subgroups up to ~2·10^5 rows, see
    :func:`~repro.core.significance.welch_t_statistics_pair`).
    """
    _check_compatible(result_a, result_b)
    pair = _aligned_pair(result_a, result_b)
    kept = np.flatnonzero(np.abs(pair.t) >= min_t)
    shift = pair.div_b[kept] - pair.div_a[kept]

    n_two = kept.size
    n_only_a = pair.only_a_rows.size
    group = np.concatenate(
        [
            np.zeros(n_two, dtype=np.int8),
            np.ones(n_only_a + pair.only_b_rows.size, dtype=np.int8),
        ]
    )
    magnitude = np.concatenate(
        [
            -np.abs(shift),
            -np.abs(result_a.divergence_vector()[pair.only_a_rows]),
            -np.abs(result_b.divergence_vector()[pair.only_b_rows]),
        ]
    )
    order = np.lexsort((magnitude, group))[: max(int(k), 0)]

    shifts: list[PatternShift] = []
    for position in order:
        position = int(position)
        if position < n_two:
            shifts.append(
                _two_sided_shift(result_a, result_b, pair, int(kept[position]))
            )
        elif position < n_two + n_only_a:
            row = int(pair.only_a_rows[position - n_two])
            shifts.append(_one_sided_shift(result_a, row, in_a=True))
        else:
            row = int(pair.only_b_rows[position - n_two - n_only_a])
            shifts.append(_one_sided_shift(result_b, row, in_a=False))
    return shifts


def regressions(
    result_a: PatternDivergenceResult,
    result_b: PatternDivergenceResult,
    k: int = 10,
    min_t: float = 2.0,
) -> list[PatternShift]:
    """Patterns where model B diverges *more* than model A, significantly.

    The "did my new model get worse anywhere?" query: patterns with
    ``|Δ_b| > |Δ_a|`` passing the |t| gate, largest increase first.
    Filtering happens in one vectorized pass over the aligned table;
    one-sided patterns (no measurable shift) never qualify.
    """
    _check_compatible(result_a, result_b)
    pair = _aligned_pair(result_a, result_b)
    kept = np.flatnonzero(
        (np.abs(pair.t) >= min_t)
        & (np.abs(pair.div_b) > np.abs(pair.div_a))
    )
    score = -(np.abs(pair.div_b[kept]) - np.abs(pair.div_a[kept]))
    order = np.argsort(score, kind="stable")[: max(int(k), 0)]
    return [
        _two_sided_shift(result_a, result_b, pair, int(kept[int(i)]))
        for i in order
    ]


def delta_columns(
    result_a: PatternDivergenceResult, result_b: PatternDivergenceResult
) -> dict[str, np.ndarray]:
    """The full vectorized delta table, aligned with A's lattice rows.

    Returns parallel float64 arrays — one entry per row of
    ``result_a.lattice_index()`` — named ``divergence_a``,
    ``divergence_b``, ``shift``, ``rate_a``, ``rate_b``, ``t`` (signed
    Welch) and ``delta_divergence``, plus the int64 ``row_b`` mapping
    into B's table (``-1`` where the pattern is not frequent under B).
    Entries are NaN wherever the pattern is one-sided or unmeasurable;
    the empty pattern's row is all-NaN.
    """
    _check_compatible(result_a, result_b)
    pair = _aligned_pair(result_a, result_b)
    n = result_a.lattice_index().n_table_rows
    columns: dict[str, np.ndarray] = {
        name: np.full(n, _NAN)
        for name in (
            "divergence_a", "divergence_b", "shift", "rate_a", "rate_b",
            "t", "delta_divergence",
        )
    }
    columns["divergence_a"][pair.a_rows] = pair.div_a
    columns["divergence_b"][pair.a_rows] = pair.div_b
    columns["shift"][pair.a_rows] = pair.div_b - pair.div_a
    columns["rate_a"][pair.a_rows] = pair.rate_a
    columns["rate_b"][pair.a_rows] = pair.rate_b
    columns["t"][pair.a_rows] = pair.t
    columns["delta_divergence"][pair.a_rows] = pair.delta
    if pair.only_a_rows.size:
        columns["divergence_a"][pair.only_a_rows] = (
            result_a.divergence_vector()[pair.only_a_rows]
        )
        columns["rate_a"][pair.only_a_rows] = result_a._rates[pair.only_a_rows]
    columns["row_b"] = pair.rows_b_of_a
    return columns


# ----------------------------------------------------------------------
# the shared-lattice multi-model engine
# ----------------------------------------------------------------------


class _ChannelLayout(NamedTuple):
    """How the per-model outcome channels were stacked for mining.

    ``paired`` carries the (T, F) pair of every model (2N channels).
    ``derived`` exploits metrics whose BOTTOM mask depends on the
    ground truth alone (fpr, fnr, error, accuracy, tpr, tnr, ... —
    every model shares it): only the N TRUE channels plus at most one
    shared BOTTOM channel are mined, and each model's F count is
    derived exactly as ``n - T - ⊥``. Fewer channels means less
    per-itemset popcount work, which is what keeps N-model mining close
    to single-model cost.
    """

    kind: str
    n_models: int
    has_bottom: bool


def _stack_channels(
    outcomes: Sequence[np.ndarray],
) -> tuple[np.ndarray, _ChannelLayout]:
    bottoms = [outcome == BOTTOM for outcome in outcomes]
    if all(np.array_equal(bottoms[0], b) for b in bottoms[1:]):
        blocks = [outcome == TRUE for outcome in outcomes]
        has_bottom = bool(bottoms[0].any())
        if has_bottom:
            blocks.append(bottoms[0])
        channels = np.column_stack(blocks).astype(np.int64)
        return channels, _ChannelLayout("derived", len(outcomes), has_bottom)
    channels = np.hstack([outcome_channels(o) for o in outcomes])
    return channels, _ChannelLayout("paired", len(outcomes), False)


def _model_counts(
    keys: list,
    matrix: np.ndarray,
    model_index: int,
    layout: _ChannelLayout,
    n_rows: int,
    min_support: float,
) -> FrequentItemsets:
    """Slice one model's ``[n, T, F]`` table out of the shared counts."""
    if layout.kind == "paired":
        t_col = 1 + 2 * model_index
        triples = np.ascontiguousarray(matrix[:, [0, t_col, t_col + 1]])
    else:
        n_col = matrix[:, 0]
        t = matrix[:, 1 + model_index]
        bottom = matrix[:, 1 + layout.n_models] if layout.has_bottom else 0
        # T, F and ⊥ partition each itemset's coverage, so F is exact.
        triples = np.column_stack([n_col, t, n_col - t - bottom])
    return FrequentItemsets(dict(zip(keys, triples)), n_rows, min_support)


class CompareResult:
    """N per-model divergence tables over one shared mined lattice.

    Obtained from :func:`explore_compare`. Every per-model
    :class:`PatternDivergenceResult` covers the *same* frequent-itemset
    table (mined once over the stacked outcome channels) and is
    bit-identical to an independent exploration of that model; the
    shared :class:`~repro.core.lattice_index.LatticeIndex` is built
    once and reused by every pairwise view.
    """

    def __init__(
        self,
        results: dict[str, PatternDivergenceResult],
        metric: str,
        min_support: float,
    ) -> None:
        self.results = results
        self.model_names = list(results)
        self.metric = metric
        self.min_support = min_support
        self.baseline = self.model_names[0]

    def __getitem__(self, name: str) -> PatternDivergenceResult:
        return self.result(name)

    def result(self, name: str) -> PatternDivergenceResult:
        """The divergence table of one model."""
        try:
            return self.results[name]
        except KeyError:
            raise ReproError(
                f"unknown model {name!r}; compared: {self.model_names}"
            ) from None

    @property
    def n_patterns(self) -> int:
        """Number of frequent patterns (shared by every model)."""
        return len(self.results[self.baseline]) - 1

    @property
    def global_rates(self) -> dict[str, float]:
        """Dataset-wide metric rate per model."""
        return {
            name: result.global_rate for name, result in self.results.items()
        }

    def lattice_index(self):
        """The shared lattice index, installed on every per-model table."""
        index = self.results[self.baseline].lattice_index()
        for result in self.results.values():
            result._lattice_index = index
        return index

    def shifts(
        self,
        model: str,
        baseline: str | None = None,
        k: int = 10,
        min_t: float = 0.0,
    ) -> list[PatternShift]:
        """:func:`compare_results` of ``baseline -> model``."""
        self.lattice_index()
        return compare_results(
            self.result(baseline or self.baseline),
            self.result(model),
            k=k,
            min_t=min_t,
        )

    def regressions(
        self,
        model: str,
        baseline: str | None = None,
        k: int = 10,
        min_t: float = 2.0,
    ) -> list[PatternShift]:
        """:func:`regressions` of ``baseline -> model``."""
        self.lattice_index()
        return regressions(
            self.result(baseline or self.baseline),
            self.result(model),
            k=k,
            min_t=min_t,
        )

    def delta_table(
        self, model: str, baseline: str | None = None
    ) -> dict[str, np.ndarray]:
        """:func:`delta_columns` of ``baseline -> model``."""
        self.lattice_index()
        return delta_columns(
            self.result(baseline or self.baseline), self.result(model)
        )

    def __repr__(self) -> str:
        return (
            f"CompareResult(metric={self.metric!r}, "
            f"models={self.model_names}, patterns={self.n_patterns}, "
            f"min_support={self.min_support})"
        )


def _normalize_models(
    table: Table,
    true_column: str,
    models: Mapping[str, object] | Sequence[str],
) -> tuple[list[str], dict[str, np.ndarray], set[str]]:
    """Resolve the ``models`` argument into named prediction arrays.

    Accepts a mapping of name -> (column name | 0/1 array) or a plain
    sequence of column names. Returns the ordered names, the boolean
    prediction arrays, and the set of table columns consumed as class
    or prediction columns (excluded from the default analysis
    attributes).
    """
    if isinstance(models, Mapping):
        pairs = list(models.items())
    else:
        pairs = [(str(m), m) for m in models]
    if len(pairs) < 2:
        raise ReproError(
            f"explore_compare needs at least two models, got {len(pairs)}"
        )
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        raise ReproError(f"duplicate model names in {names}")
    consumed = {true_column}
    predictions: dict[str, np.ndarray] = {}
    for name, spec in pairs:
        if isinstance(spec, str):
            consumed.add(spec)
            predictions[name] = _class_array(table, spec)
        else:
            arr = np.asarray(spec)
            if arr.ndim != 1 or arr.shape[0] != table.n_rows:
                raise ReproError(
                    f"model {name!r} predictions must be a 1-D array "
                    f"covering all {table.n_rows} rows, got shape {arr.shape}"
                )
            predictions[name] = arr
    return names, predictions, consumed


def explore_compare(
    table: Table,
    true_column: str,
    models: Mapping[str, object] | Sequence[str],
    metric: str = "fpr",
    min_support: float = 0.1,
    attributes: Sequence[str] | None = None,
    algorithm: str = "bitset",
    max_length: int | None = None,
    n_workers: int | None = None,
    mining_cache=None,
    deadline: Deadline | float | None = None,
    cancel_token: CancelToken | None = None,
) -> CompareResult:
    """Compare N models' divergence tables with a single mining pass.

    Parameters
    ----------
    table:
        The discretized dataset shared by every model.
    true_column:
        Ground-truth column (boolean or 0/1 valued).
    models:
        At least two models: a mapping of model name to either a
        prediction column name or a 0/1 prediction array (the
        ``mitigation`` module's ``predict()`` output plugs in directly
        for pre/post comparisons), or a plain sequence of prediction
        column names.
    metric, min_support, algorithm, max_length, n_workers:
        As in :meth:`~repro.core.divergence.DivergenceExplorer.explore`.
    attributes:
        Analysis attributes; defaults to every categorical column
        except the class column and the model prediction columns.
    mining_cache:
        Optional shared :class:`~repro.fpm.cache.MiningCache`; a fresh
        private one by default.
    deadline, cancel_token:
        Cooperative-cancellation controls, as in ``explore``.

    Returns
    -------
    A :class:`CompareResult` whose per-model tables are bit-identical
    to N independent ``DivergenceExplorer.explore`` runs, at roughly
    the cost of one: the itemset lattice is mined once, only the
    per-model channel tallies scale with N — and for metrics whose
    BOTTOM mask is truth-determined those reduce to one TRUE channel
    per model plus a single shared BOTTOM channel.
    """
    with cancel_scope(deadline=deadline, token=cancel_token):
        checkpoint("compare.explore")
        names, predictions, consumed = _normalize_models(
            table, true_column, models
        )
        if attributes is None:
            attributes = [
                n for n in table.categorical_names if n not in consumed
            ]
        else:
            attributes = list(attributes)
            overlap = consumed & set(attributes)
            if overlap:
                raise ReproError(
                    "class and model prediction columns cannot be "
                    f"analysis attributes: {sorted(overlap)}"
                )
        explorer = DivergenceExplorer(
            table,
            true_column,
            None,
            attributes=attributes,
            mining_cache=mining_cache,
            n_workers=n_workers,
        )
        fn = outcome_metric(metric)
        truth = explorer._truth
        with span("compare.explore") as compare_span:
            outcomes = [fn(truth, predictions[name]) for name in names]
            channels, layout = _stack_channels(outcomes)
            dataset = TransactionDataset(
                explorer._matrix, explorer.catalog, channels
            )
            frequent = explorer.mining_cache.mine(
                dataset,
                min_support,
                algorithm=algorithm,
                max_length=max_length,
                n_workers=n_workers,
            )
            checkpoint("compare.result")
            keys, matrix = frequent.count_table()
            results: dict[str, PatternDivergenceResult] = {}
            for index, name in enumerate(names):
                per_model = _model_counts(
                    keys, matrix, index, layout,
                    frequent.n_rows, frequent.min_support,
                )
                results[name] = PatternDivergenceResult(
                    per_model, explorer.catalog, metric, min_support
                )
        compare_span.count("models", len(names))
        registry = get_registry()
        registry.counter("compare.explores").inc()
        registry.counter("compare.models_compared").inc(len(names))
        return CompareResult(results, metric, min_support)


# ----------------------------------------------------------------------
# CLI / server model-spec resolution
# ----------------------------------------------------------------------

_CLASSIFIER_PREFIX = "classifier:"


def resolve_models(
    table: Table,
    true_column: str,
    specs: Sequence[str],
    attributes: Sequence[str] | None = None,
    seed: int = 0,
) -> dict[str, np.ndarray | str]:
    """Resolve user-facing model specs into :func:`explore_compare` input.

    Each spec is either a 0/1 prediction column of ``table`` or
    ``classifier:<name>`` — the named classifier from the dataset
    registry (``forest``, ``tree``, ``logistic``, ``naive-bayes``)
    trained on a 70% split of the analysis attributes, exactly like
    :func:`repro.datasets.registry.attach_predictions` does for bundled
    data. This is the shared grammar of the CLI ``--models`` flag and
    the server's ``models`` query parameter.
    """
    resolved: dict[str, np.ndarray | str] = {}
    for spec in specs:
        if spec.startswith(_CLASSIFIER_PREFIX):
            kind = spec[len(_CLASSIFIER_PREFIX):]
            resolved[spec] = _train_model(
                table, true_column, specs, attributes, kind, seed
            )
        else:
            if spec not in table:
                raise ReproError(
                    f"unknown model column {spec!r}; pass a prediction "
                    f"column of the data or '{_CLASSIFIER_PREFIX}<name>'"
                )
            resolved[spec] = spec
    return resolved


def _train_model(
    table: Table,
    true_column: str,
    specs: Sequence[str],
    attributes: Sequence[str] | None,
    kind: str,
    seed: int,
) -> np.ndarray:
    """Train one ``classifier:<kind>`` spec on the analysis attributes."""
    from repro.datasets.registry import classifier_factory
    from repro.ml.splits import train_test_split

    reserved = {true_column} | {
        s for s in specs if not s.startswith(_CLASSIFIER_PREFIX)
    }
    if attributes is None:
        attributes = [
            n for n in table.categorical_names if n not in reserved
        ]
    else:
        attributes = [a for a in attributes if a not in reserved]
    if not attributes:
        raise ReproError("no analysis attributes available to train on")
    x = table.encoded_matrix(attributes)
    y = _class_array(table, true_column)
    train_idx, _ = train_test_split(
        table.n_rows, test_fraction=0.3, seed=seed, stratify=y
    )
    model = classifier_factory(kind)(seed)
    model.fit(x[train_idx], y[train_idx])
    return model.predict(x).astype(bool)
