"""Model comparison via divergence tables.

The paper lists *model comparison* among the applications of subgroup
analysis (Sec. 1, citing MLCube and Slice Finder). This module makes it
concrete: given two explorations of the same metric over the same
attribute catalog — two model versions, two training runs, pre/post a
fairness intervention — it aligns their pattern tables and reports
where behaviour changed, ranked by the shift in divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.items import Itemset
from repro.core.result import PatternDivergenceResult
from repro.core.significance import beta_moments, welch_t_statistic
from repro.exceptions import ReproError


@dataclass(frozen=True)
class PatternShift:
    """One pattern's change between two models."""

    itemset: Itemset
    divergence_a: float
    divergence_b: float
    rate_a: float
    rate_b: float
    t_statistic: float

    @property
    def shift(self) -> float:
        """Signed change in divergence (B minus A)."""
        return self.divergence_b - self.divergence_a

    def __str__(self) -> str:
        return (
            f"({self.itemset}) Δ {self.divergence_a:+.3f} -> "
            f"{self.divergence_b:+.3f} (shift {self.shift:+.3f}, "
            f"t={self.t_statistic:.1f})"
        )


def compare_results(
    result_a: PatternDivergenceResult,
    result_b: PatternDivergenceResult,
    k: int = 10,
    min_t: float = 0.0,
) -> list[PatternShift]:
    """Patterns whose divergence shifted most between two explorations.

    Both explorations must use the same metric and compatible catalogs
    (same attributes and categories); patterns frequent in only one of
    the two are skipped (their shift is not measurable at threshold).
    The reported ``t`` compares the two subgroup rates directly via the
    Beta-posterior Welch statistic of Sec. 3.3.
    """
    if result_a.metric != result_b.metric:
        raise ReproError(
            f"cannot compare different metrics: "
            f"{result_a.metric!r} vs {result_b.metric!r}"
        )
    if result_a.catalog.attributes != result_b.catalog.attributes or (
        result_a.catalog.categories != result_b.catalog.categories
    ):
        raise ReproError("catalogs differ; explore the same schema first")

    shifts: list[PatternShift] = []
    for key in result_a.frequent:
        if len(key) == 0 or key not in result_b.frequent:
            continue
        rec_a = result_a.record_for_key(key)
        rec_b = result_b.record_for_key(key)
        if math.isnan(rec_a.divergence) or math.isnan(rec_b.divergence):
            continue
        mu_a, var_a = beta_moments(rec_a.t_count, rec_a.f_count)
        mu_b, var_b = beta_moments(rec_b.t_count, rec_b.f_count)
        t_stat = welch_t_statistic(mu_a, var_a, mu_b, var_b)
        if t_stat < min_t:
            continue
        shifts.append(
            PatternShift(
                itemset=rec_a.itemset,
                divergence_a=rec_a.divergence,
                divergence_b=rec_b.divergence,
                rate_a=rec_a.rate,
                rate_b=rec_b.rate,
                t_statistic=t_stat,
            )
        )
    shifts.sort(key=lambda s: -abs(s.shift))
    return shifts[:k]


def regressions(
    result_a: PatternDivergenceResult,
    result_b: PatternDivergenceResult,
    k: int = 10,
    min_t: float = 2.0,
) -> list[PatternShift]:
    """Patterns where model B diverges *more* than model A, significantly.

    The "did my new model get worse anywhere?" query: positive-shift
    patterns filtered by significance, largest increase first.
    """
    worse = [
        s
        for s in compare_results(result_a, result_b, k=10**9, min_t=min_t)
        if abs(s.divergence_b) > abs(s.divergence_a)
    ]
    worse.sort(key=lambda s: -(abs(s.divergence_b) - abs(s.divergence_a)))
    return worse[:k]
