"""Outcome functions ``o : D -> {T, F, ⊥}`` (paper Def. 3.2).

An outcome function maps every instance to TRUE, FALSE or BOTTOM; the
positive outcome rate of a subset is ``#T / (#T + #F)`` with BOTTOM rows
excluded. Each supported classification metric (FPR, FNR, accuracy, ...)
is expressed as such a function of the ground truth ``v`` and prediction
``u``, which is what lets DivExplorer treat the classifier as a black
box and mine divergence with Boolean tallies only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ReproError

# Encoded outcome values.
TRUE: int = 1
FALSE: int = 0
BOTTOM: int = -1


@dataclass(frozen=True)
class OutcomeFunction:
    """A named outcome function with its builder.

    ``build(v, u)`` returns an ``int8`` array over instances with values
    in ``{TRUE, FALSE, BOTTOM}``. ``description`` documents the rate the
    positive outcome rate corresponds to.
    """

    name: str
    description: str
    build: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, v: np.ndarray, u: np.ndarray) -> np.ndarray:
        truth = _as_bool(v, "ground truth")
        pred = _as_bool(u, "prediction")
        if truth.shape != pred.shape:
            raise ReproError(
                f"ground truth ({truth.shape}) and prediction ({pred.shape}) "
                "must have the same shape"
            )
        return self.build(truth, pred)


def _as_bool(arr: np.ndarray, what: str) -> np.ndarray:
    a = np.asarray(arr)
    if a.dtype != bool:
        uniq = np.unique(a)
        if not np.all(np.isin(uniq, [0, 1])):
            raise ReproError(f"{what} must be boolean or 0/1, got values {uniq[:5]}")
        a = a.astype(bool)
    return a


def _encode(true_mask: np.ndarray, false_mask: np.ndarray) -> np.ndarray:
    """Combine masks into the int8 outcome encoding; the rest is BOTTOM."""
    out = np.full(true_mask.shape, BOTTOM, dtype=np.int8)
    out[false_mask] = FALSE
    out[true_mask] = TRUE
    return out


def _fpr(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """False positive rate: rate of wrong positives among true negatives."""
    return _encode(u & ~v, ~u & ~v)


def _fnr(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """False negative rate: rate of wrong negatives among true positives."""
    return _encode(~u & v, u & v)


def _error(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Misclassification (error) rate: no BOTTOM instances."""
    return _encode(u != v, u == v)


def _accuracy(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Accuracy: complement of the error rate."""
    return _encode(u == v, u != v)


def _tpr(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """True positive rate (recall) among true positives."""
    return _encode(u & v, ~u & v)


def _tnr(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """True negative rate among true negatives."""
    return _encode(~u & ~v, u & ~v)


def _ppv(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Positive predictive value (precision) among predicted positives."""
    return _encode(u & v, u & ~v)


def _fdr(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """False discovery rate among predicted positives."""
    return _encode(u & ~v, u & v)


def _fomr(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """False omission rate among predicted negatives."""
    return _encode(~u & v, ~u & ~v)


def _npv(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Negative predictive value among predicted negatives."""
    return _encode(~u & ~v, ~u & v)


def _positive_rate(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Ground-truth positive rate (``o(x) = v(x)``; paper Sec. 3.2)."""
    return _encode(v, ~v)


def _predicted_positive_rate(v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Predicted positive rate (``o(x) = u(x)``)."""
    return _encode(u, ~u)


_BUILTIN_METRIC_NAMES = frozenset(
    {"fpr", "fnr", "error", "accuracy", "tpr", "tnr", "ppv", "fdr", "for",
     "npv", "posr", "predr"}
)

OUTCOME_METRICS: dict[str, OutcomeFunction] = {
    fn.name: fn
    for fn in (
        OutcomeFunction("fpr", "false positive rate", _fpr),
        OutcomeFunction("fnr", "false negative rate", _fnr),
        OutcomeFunction("error", "misclassification error rate", _error),
        OutcomeFunction("accuracy", "classification accuracy", _accuracy),
        OutcomeFunction("tpr", "true positive rate", _tpr),
        OutcomeFunction("tnr", "true negative rate", _tnr),
        OutcomeFunction("ppv", "positive predictive value", _ppv),
        OutcomeFunction("fdr", "false discovery rate", _fdr),
        OutcomeFunction("for", "false omission rate", _fomr),
        OutcomeFunction("npv", "negative predictive value", _npv),
        OutcomeFunction("posr", "ground-truth positive rate", _positive_rate),
        OutcomeFunction("predr", "predicted positive rate", _predicted_positive_rate),
    )
}


def outcome_metric(name: str) -> OutcomeFunction:
    """Look up a built-in or registered outcome function by name.

    Raises ``ReproError`` listing the available metrics when unknown.
    """
    try:
        return OUTCOME_METRICS[name]
    except KeyError:
        raise ReproError(
            f"unknown metric {name!r}; available: {sorted(OUTCOME_METRICS)}"
        ) from None


def register_metric(
    name: str,
    description: str,
    build: Callable[[np.ndarray, np.ndarray], np.ndarray],
    overwrite: bool = False,
) -> OutcomeFunction:
    """Register a custom outcome function under ``name``.

    ``build(v, u)`` receives boolean ground-truth and prediction arrays
    and must return an int8 array over ``{TRUE, FALSE, BOTTOM}`` (use
    the module's :func:`_encode`-style pattern, or build it directly).
    Once registered, the metric works everywhere a built-in does —
    ``DivergenceExplorer.explore``, ``explore_multi``, the CLI and the
    server.
    """
    if name in OUTCOME_METRICS and not overwrite:
        raise ReproError(
            f"metric {name!r} already exists; pass overwrite=True to replace"
        )
    fn = OutcomeFunction(name, description, build)
    OUTCOME_METRICS[name] = fn
    return fn


def unregister_metric(name: str) -> None:
    """Remove a custom metric (built-ins are protected)."""
    if name in _BUILTIN_METRIC_NAMES:
        raise ReproError(f"cannot unregister built-in metric {name!r}")
    OUTCOME_METRICS.pop(name, None)


def outcome_channels(outcome: np.ndarray) -> np.ndarray:
    """One-hot (T, F) channel matrix of an encoded outcome array.

    BOTTOM counts are derivable as ``support_count - T - F``, so only two
    channels are carried through mining (Algorithm 1, line 2).
    """
    out = np.asarray(outcome)
    return np.column_stack([(out == TRUE), (out == FALSE)]).astype(np.int64)


def positive_rate(t_count: int, f_count: int) -> float:
    """``f_o`` of Def. 3.2: ``T / (T + F)``; NaN when the subset has no
    non-BOTTOM instances."""
    denom = t_count + f_count
    if denom == 0:
        return float("nan")
    return t_count / denom
