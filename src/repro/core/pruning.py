"""ε-redundancy pruning of divergent itemsets (paper Sec. 3.5).

A pattern ``I`` is pruned when some item ``α ∈ I`` has absolute marginal
contribution at most ``ε``: ``|Δ(I) − Δ(I \\ α)| ≤ ε``. The shorter
pattern ``I \\ α`` then already captures the divergence, so dropping
``I`` compacts the output without losing information (Table 6,
Fig. 10).

The hot path is columnar: the lattice index resolves every pattern's
immediate subsets once, and :func:`redundancy_margins` reduces the
marginal contributions to one ``min |Δ(I) − Δ(I \\ α)|`` per row. A
whole ε-sweep (Fig. 10) is then a single comparison per threshold
against that one array. The original per-pattern dict walk is retained
as :func:`prune_redundant_reference` / :func:`is_redundant_reference`,
the oracles the vectorized path is property-tested against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.result import PatternDivergenceResult, PatternRecord
from repro.exceptions import ReproError
from repro.obs import span
from repro.resilience import checkpoint


def _sort_records(records: list[PatternRecord]) -> list[PatternRecord]:
    """Deterministic, backend-independent pruning order."""
    records.sort(
        key=lambda r: (-r.divergence, -r.support, r.length, str(r.itemset))
    )
    return records


def redundancy_margins(
    result: PatternDivergenceResult,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row minimal marginal contribution and validity mask.

    Returns ``(margins, prunable)`` aligned with the lattice-index rows:
    ``margins[i] = min_{α ∈ K_i} |Δ(K_i) − Δ(K_i \\ α)|`` over parents
    with defined divergence (``inf`` when no parent qualifies), and
    ``prunable[i]`` is True for non-empty rows with defined divergence.
    A row survives pruning at threshold ``ε`` iff
    ``prunable[i] and margins[i] > ε`` — every ε of a sweep reuses these
    two arrays.
    """
    checkpoint("kernel.redundancy_margins")
    index = result.lattice_index()
    div = result.divergence_vector()
    parent_div = np.where(
        index.parent_rows >= 0, div[index.parent_rows], np.nan
    )
    diff = np.abs(div[index.row_of_entry] - parent_div)
    # Undefined parents never make a pattern redundant.
    diff = np.where(np.isnan(diff), np.inf, diff)
    # Flat entries are grouped by row, so the per-row minimum is one
    # segmented reduction (the sentinel guards a zero-length tail row).
    margins = np.minimum.reduceat(
        np.concatenate([diff, [np.inf]]), index.items_ptr[:-1]
    )
    margins[index.lengths == 0] = np.inf
    prunable = (index.lengths > 0) & ~np.isnan(div)
    return margins, prunable


def is_redundant(
    result: PatternDivergenceResult, key: frozenset[int], epsilon: float
) -> bool:
    """Whether pattern ``key`` is pruned at threshold ``epsilon``.

    Patterns whose own divergence is undefined (all-BOTTOM support set)
    are treated as redundant — they carry no rate information.
    """
    row = result.row_of_key(frozenset(key))
    if row < 0:
        raise ReproError(
            f"pattern {set(key)} is not frequent at support {result.min_support}"
        )
    index = result.lattice_index()
    div = result.divergence_vector()
    if math.isnan(div[row]):
        return True
    lo, hi = int(index.items_ptr[row]), int(index.items_ptr[row + 1])
    parents = index.parent_rows[lo:hi]
    parent_div = np.where(parents >= 0, div[parents], np.nan)
    with np.errstate(invalid="ignore"):
        near = np.abs(div[row] - parent_div) <= epsilon
    return bool(np.any(near & ~np.isnan(parent_div)))


def is_redundant_reference(
    result: PatternDivergenceResult, key: frozenset[int], epsilon: float
) -> bool:
    """Dict-walk oracle for :func:`is_redundant` (kept verbatim)."""
    div_i = result.divergence_of_key(key)
    if math.isnan(div_i):
        return True
    for alpha in key:
        div_parent = result.divergence_of_key(key - {alpha})
        if math.isnan(div_parent):
            continue
        if abs(div_i - div_parent) <= epsilon:
            return True
    return False


@span("kernel.prune_redundant")
def prune_redundant(
    result: PatternDivergenceResult, epsilon: float
) -> list[PatternRecord]:
    """All non-redundant, non-empty frequent patterns at threshold ``ε``.

    Returned sorted by decreasing divergence (ties: higher support,
    shorter, then lexicographic — independent of the mining backend's
    enumeration order). ``epsilon = 0`` keeps every pattern where each
    item moves the divergence at all. The scan is one comparison against
    the precomputed redundancy margins; only surviving rows are
    materialized into records.
    """
    if epsilon < 0:
        raise ReproError(f"epsilon must be >= 0, got {epsilon}")
    margins, prunable = redundancy_margins(result)
    kept_rows = np.nonzero(prunable & (margins > epsilon))[0]
    return _sort_records(result.records_for_rows(kept_rows))


def prune_redundant_reference(
    result: PatternDivergenceResult, epsilon: float
) -> list[PatternRecord]:
    """Dict-walk oracle for :func:`prune_redundant` (kept verbatim)."""
    if epsilon < 0:
        raise ReproError(f"epsilon must be >= 0, got {epsilon}")
    kept = [
        result.record_for_key(key)
        for key in result.frequent
        if len(key) > 0 and not is_redundant_reference(result, key, epsilon)
    ]
    return _sort_records(kept)


def pruned_count_by_epsilon(
    result: PatternDivergenceResult, epsilons: list[float]
) -> dict[float, int]:
    """Number of surviving patterns per ε (the Fig. 10 sweep).

    The margins are computed once; each threshold is a single vectorized
    comparison, with no record materialization at all.
    """
    if any(eps < 0 for eps in epsilons):
        bad = min(epsilons)
        raise ReproError(f"epsilon must be >= 0, got {bad}")
    margins, prunable = redundancy_margins(result)
    return {
        eps: int(np.count_nonzero(prunable & (margins > eps)))
        for eps in epsilons
    }
