"""ε-redundancy pruning of divergent itemsets (paper Sec. 3.5).

A pattern ``I`` is pruned when some item ``α ∈ I`` has absolute marginal
contribution at most ``ε``: ``|Δ(I) − Δ(I \\ α)| ≤ ε``. The shorter
pattern ``I \\ α`` then already captures the divergence, so dropping
``I`` compacts the output without losing information (Table 6,
Fig. 10).
"""

from __future__ import annotations

import math

from repro.core.result import PatternDivergenceResult, PatternRecord
from repro.exceptions import ReproError


def is_redundant(
    result: PatternDivergenceResult, key: frozenset[int], epsilon: float
) -> bool:
    """Whether pattern ``key`` is pruned at threshold ``epsilon``.

    Patterns whose own divergence is undefined (all-BOTTOM support set)
    are treated as redundant — they carry no rate information.
    """
    div_i = result.divergence_of_key(key)
    if math.isnan(div_i):
        return True
    for alpha in key:
        div_parent = result.divergence_of_key(key - {alpha})
        if math.isnan(div_parent):
            continue
        if abs(div_i - div_parent) <= epsilon:
            return True
    return False


def prune_redundant(
    result: PatternDivergenceResult, epsilon: float
) -> list[PatternRecord]:
    """All non-redundant, non-empty frequent patterns at threshold ``ε``.

    Returned sorted by decreasing divergence (ties: higher support,
    shorter, then lexicographic — independent of the mining backend's
    enumeration order). ``epsilon = 0`` keeps every pattern where each
    item moves the divergence at all.
    """
    if epsilon < 0:
        raise ReproError(f"epsilon must be >= 0, got {epsilon}")
    kept = [
        result.record_for_key(key)
        for key in result.frequent
        if len(key) > 0 and not is_redundant(result, key, epsilon)
    ]
    kept.sort(
        key=lambda r: (-r.divergence, -r.support, r.length, str(r.itemset))
    )
    return kept


def pruned_count_by_epsilon(
    result: PatternDivergenceResult, epsilons: list[float]
) -> dict[float, int]:
    """Number of surviving patterns per ε (the Fig. 10 sweep)."""
    return {eps: len(prune_redundant(result, eps)) for eps in epsilons}
