"""Command-line interface: ``python -m repro <command> ...``.

Subcommands cover the full analysis surface:

- ``datasets``   — list bundled datasets and their characteristics
- ``explore``    — top divergent patterns for a metric
- ``shapley``    — item contributions of one pattern
- ``global``     — global vs individual item divergence
- ``corrective`` — top corrective items
- ``significant``— patterns surviving Benjamini-Hochberg FDR control
- ``lattice``    — render the subset lattice of a pattern (text or DOT)
- ``report``     — full markdown audit report
- ``study``      — run the simulated bias-injection user study
- ``rank``       — exposure/rank divergence of a ranking score over
  all subgroups (weight models: exposure, topk, reciprocal_rank,
  score); scores come from a continuous column or a trained
  classifier's predict_proba
- ``monitor``    — streaming divergence monitor: replay a dataset in
  shuffled batches (optionally with injected drift) and print the
  drift-alert timeline; ``--store`` journals every window into a
  durable pattern store
- ``patterns``   — inspect and manage a durable pattern store: list
  the ledger (filterable, paginated), acknowledge or reopen patterns,
  force compaction

Data can come from a bundled generator (``--dataset compas``) or from a
CSV file (``--csv data.csv --true-column y --pred-column yhat``), in
which case continuous columns are quantile-discretized.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.divergence import DivergenceExplorer
from repro.core.items import Itemset
from repro.core.result import records_as_rows
from repro.core.serialize import lattice_to_dot
from repro.datasets import DATASET_NAMES, dataset_characteristics, load
from repro.exceptions import ReproError
from repro.experiments.report import divergence_report
from repro.experiments.tables import format_table
from repro.obs import render_profile, span
from repro.params import (
    validate_alert_threshold,
    validate_batch_size,
    validate_confidence,
    validate_deadline,
    validate_epsilon,
    validate_limit,
    validate_min_t,
    validate_models,
    validate_offset,
    validate_rank_k,
    validate_sample,
    validate_step,
    validate_support,
    validate_top,
    validate_weight_model,
    validate_window,
    validate_workers,
)
from repro.resilience import DeadlineExceeded, cancel_scope
from repro.tabular.discretize import discretize_table
from repro.tabular.io import read_csv


def _arg(validator):
    """Adapt a ``repro.params`` validator into an argparse ``type=``.

    Bad values then fail at parse time with argparse's usage error
    (exit code 2) carrying the validator's message, instead of
    surfacing later as a runtime error.
    """

    def parse(text: str):
        try:
            return validator(text)
        except ReproError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None

    return parse


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DivExplorer reproduction — pattern divergence analysis",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing table after the command",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="abort the command after this many seconds "
        "(cooperative; exit code 2 on expiry)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_profile_arg(p: argparse.ArgumentParser) -> None:
        # Accepted after the subcommand too; SUPPRESS keeps the
        # subparser from clobbering a --profile/--deadline given
        # before it.
        p.add_argument(
            "--profile",
            action="store_true",
            default=argparse.SUPPRESS,
            help=argparse.SUPPRESS,
        )
        p.add_argument(
            "--deadline",
            type=float,
            default=argparse.SUPPRESS,
            help=argparse.SUPPRESS,
        )

    add_profile_arg(sub.add_parser("datasets", help="list bundled datasets"))

    def add_data_args(p: argparse.ArgumentParser) -> None:
        add_profile_arg(p)
        p.add_argument("--dataset", choices=DATASET_NAMES,
                       help="bundled dataset name")
        p.add_argument("--csv", help="CSV file with your own data")
        p.add_argument("--true-column", default="class")
        p.add_argument("--pred-column", default="pred")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--bins", type=int, default=3,
                       help="quantile bins for CSV continuous columns")

    def add_explore_args(p: argparse.ArgumentParser) -> None:
        add_data_args(p)
        p.add_argument("--metric", default="fpr")
        p.add_argument("--support", type=float, default=0.1)
        p.add_argument("--algorithm", default="bitset",
                       choices=["bitset", "fpgrowth", "apriori", "eclat",
                                "bruteforce"])
        p.add_argument("--workers", type=_arg(validate_workers), default=None,
                       help="mining worker processes: 0 auto, 1 serial, "
                            ">=2 row-sharded (identical results)")
        p.add_argument("--sample", type=_arg(validate_sample), default=None,
                       help="mine a seeded row sample instead of the full "
                            "dataset: fraction in (0,1], row count, or "
                            "'auto'; results carry credible intervals")
        p.add_argument("--confidence", type=_arg(validate_confidence),
                       default=0.95,
                       help="credible-interval mass for --sample results")

    p_explore = sub.add_parser("explore", help="top divergent patterns")
    add_explore_args(p_explore)
    p_explore.add_argument("--top", type=int, default=10)
    p_explore.add_argument("--epsilon", type=float,
                           help="apply ε-redundancy pruning first")

    p_shapley = sub.add_parser("shapley", help="item contributions")
    add_explore_args(p_shapley)
    p_shapley.add_argument("--pattern", required=True,
                           help='e.g. "sex=Male, #prior=>3"')

    p_global = sub.add_parser("global", help="global item divergence")
    add_explore_args(p_global)
    p_global.add_argument("--top", type=int, default=12)

    p_corr = sub.add_parser("corrective", help="top corrective items")
    add_explore_args(p_corr)
    p_corr.add_argument("--top", type=int, default=10)

    p_sig = sub.add_parser(
        "significant", help="patterns surviving FDR control"
    )
    add_explore_args(p_sig)
    p_sig.add_argument("--alpha", type=float, default=0.05)
    p_sig.add_argument("--top", type=int, default=10)

    p_lattice = sub.add_parser("lattice", help="subset lattice of a pattern")
    add_explore_args(p_lattice)
    p_lattice.add_argument("--pattern", required=True)
    p_lattice.add_argument("--threshold", type=float, default=0.15)
    p_lattice.add_argument("--dot", action="store_true",
                           help="emit Graphviz DOT instead of text")

    p_report = sub.add_parser("report", help="full markdown audit report")
    add_data_args(p_report)
    p_report.add_argument("--support", type=float, default=0.05)
    p_report.add_argument("--metrics", default="fpr,fnr,error,accuracy")
    p_report.add_argument("--output", help="write report to this file")

    p_cmp = sub.add_parser(
        "compare",
        help="compare N models' divergence tables over one shared lattice",
    )
    add_data_args(p_cmp)
    p_cmp.add_argument(
        "--models", required=True, type=_arg(validate_models),
        help="comma-separated model specs: prediction columns and/or "
             "classifier:<name> (forest, tree, logistic, naive-bayes)",
    )
    p_cmp.add_argument("--baseline", default=None,
                       help="baseline model spec (default: first of --models)")
    p_cmp.add_argument("--metric", default="fpr")
    p_cmp.add_argument("--support", type=_arg(validate_support), default=0.1)
    p_cmp.add_argument("--algorithm", default="bitset",
                       choices=["bitset", "fpgrowth", "apriori", "eclat",
                                "bruteforce"])
    p_cmp.add_argument("--workers", type=_arg(validate_workers), default=None,
                       help="mining worker processes: 0 auto, 1 serial, "
                            ">=2 row-sharded (identical results)")
    p_cmp.add_argument("--top", type=int, default=10,
                       help="shift/regression rows per challenger model")
    p_cmp.add_argument("--min-t", type=_arg(validate_min_t), default=0.0,
                       help="minimum |Welch t| for a shift to be reported")

    p_rank = sub.add_parser(
        "rank",
        help="exposure/rank divergence of a score over all subgroups",
    )
    add_data_args(p_rank)
    p_rank.add_argument(
        "--weight-model", type=_arg(validate_weight_model),
        default="exposure",
        help="per-instance weight: exposure (1/log2(rank+1)), "
             "topk (membership, needs --rank-k), reciprocal_rank, "
             "or score (raw value)",
    )
    p_rank.add_argument("--rank-k", type=_arg(validate_rank_k), default=None,
                        help="list size k for --weight-model topk")
    p_rank.add_argument("--score-column", default="score",
                        help="continuous column holding the ranking score; "
                             "when absent, scores come from --classifier")
    p_rank.add_argument("--classifier", default="logistic",
                        help="classifier whose predict_proba supplies scores "
                             "when --score-column is missing (forest, tree, "
                             "logistic, naive-bayes)")
    p_rank.add_argument("--support", type=_arg(validate_support), default=0.1)
    p_rank.add_argument("--algorithm", default="bitset",
                        choices=["bitset", "fpgrowth", "apriori", "eclat",
                                 "bruteforce"])
    p_rank.add_argument("--workers", type=_arg(validate_workers), default=None,
                        help="mining worker processes: 0 auto, 1 serial, "
                             ">=2 row-sharded (identical results)")
    p_rank.add_argument("--top", type=_arg(validate_top), default=10)

    p_study = sub.add_parser("study", help="simulated user study")
    add_profile_arg(p_study)
    p_study.add_argument("--seed", type=int, default=0)
    p_study.add_argument("--users", type=int, default=35)

    p_mon = sub.add_parser(
        "monitor",
        help="streaming divergence monitor (replay, optional injected drift)",
    )
    add_profile_arg(p_mon)
    p_mon.add_argument("--dataset", choices=DATASET_NAMES, required=True,
                       help="bundled dataset to replay as a stream")
    p_mon.add_argument("--metric", default="fpr")
    p_mon.add_argument("--support", type=_arg(validate_support), default=0.1)
    p_mon.add_argument("--algorithm", default="bitset",
                       choices=["bitset", "fpgrowth", "apriori", "eclat",
                                "bruteforce"])
    p_mon.add_argument("--workers", type=_arg(validate_workers), default=None,
                       help="mining worker processes for window re-mining: "
                            "0 auto, 1 serial, >=2 row-sharded")
    p_mon.add_argument("--window", type=_arg(validate_window), default=1024,
                       help="window size in rows")
    p_mon.add_argument("--step", type=_arg(validate_step), default=None,
                       help="window step in rows (default: tumbling)")
    p_mon.add_argument("--batch-size", type=_arg(validate_batch_size),
                       default=256, help="ingestion batch size in rows")
    p_mon.add_argument("--alert-delta", type=_arg(validate_alert_threshold),
                       default=0.15,
                       help="min |divergence change| between windows")
    p_mon.add_argument("--alert-t", type=_arg(validate_alert_threshold),
                       default=3.0, help="min Welch t between windows")
    p_mon.add_argument("--churn", type=_arg(validate_alert_threshold),
                       default=0.6, help="top-k churn alert threshold")
    p_mon.add_argument("--top", type=int, default=10,
                       help="ranking depth for churn and window summaries")
    p_mon.add_argument("--inject", metavar="PATTERN",
                       help='inject synthetic drift into e.g. "sex=Male"')
    p_mon.add_argument("--inject-at", type=float, default=0.5,
                       help="stream position of the injection (fraction)")
    p_mon.add_argument("--max-rows", type=int, default=None,
                       help="truncate the replay to this many rows")
    p_mon.add_argument("--seed", type=int, default=0)
    p_mon.add_argument("--store", metavar="PATH", default=None,
                       help="journal every mined window into this durable "
                            "pattern store (inspect with 'patterns')")

    p_pat = sub.add_parser(
        "patterns",
        help="inspect and manage a durable pattern store",
    )
    add_profile_arg(p_pat)
    p_pat.add_argument("--store", metavar="PATH", required=True,
                       help="pattern store log written by 'monitor --store' "
                            "or the app server")
    p_pat.add_argument("--offset", type=_arg(validate_offset), default=0,
                       help="pagination offset into the filtered ledger")
    p_pat.add_argument("--limit", type=_arg(validate_limit), default=20,
                       help="patterns listed per invocation")
    state = p_pat.add_mutually_exclusive_group()
    state.add_argument("--acked", action="store_true",
                       help="list only acknowledged patterns")
    state.add_argument("--unacked", action="store_true",
                       help="list only unacknowledged patterns")
    p_pat.add_argument("--min-divergence",
                       type=_arg(validate_alert_threshold), default=None,
                       help="minimum latest |divergence| to list")
    p_pat.add_argument("--since-window", type=int, default=None,
                       help="list patterns last seen in window >= this")
    p_pat.add_argument("--ack", metavar="KEY", default=None,
                       help="acknowledge the pattern with this key "
                            "(comma-separated item ids from the listing)")
    p_pat.add_argument("--unack", metavar="KEY", default=None,
                       help="reopen (un-acknowledge) the pattern")
    p_pat.add_argument("--note", default=None,
                       help="note recorded with --ack")
    p_pat.add_argument("--compact", action="store_true",
                       help="rewrite the log to one record per live pattern")

    return parser


def _load_explorer(args: argparse.Namespace) -> DivergenceExplorer:
    """Build an explorer from --dataset or --csv arguments."""
    if args.dataset and args.csv:
        raise ReproError("pass either --dataset or --csv, not both")
    if args.dataset:
        data = load(args.dataset, seed=args.seed)
        return DivergenceExplorer(
            data.table, data.true_column, data.pred_column,
            attributes=data.attributes,
        )
    if args.csv:
        table = read_csv(args.csv)
        table = discretize_table(table, default_bins=args.bins)
        pred = args.pred_column if args.pred_column in table else None
        return DivergenceExplorer(table, args.true_column, pred)
    raise ReproError("one of --dataset or --csv is required")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _validate_args(args)
        with span(f"cli.{args.command}"):
            with cancel_scope(deadline=getattr(args, "deadline", None)):
                _dispatch(args)
    except DeadlineExceeded as exc:
        # Must precede ReproError (its base): an expired budget is a
        # distinct outcome, not a usage error.
        print(f"deadline exceeded: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        # Tear down any sharded-mining worker pools deterministically:
        # relying on atexit alone leaves forked children alive for the
        # rest of embedding processes (tests, notebooks) that call
        # main() without exiting.
        from repro.fpm.sharded import shutdown_pools

        shutdown_pools()
        if getattr(args, "profile", False):
            table = render_profile()
            if table:
                print(f"\n-- profile ({args.command}) --")
                print(table)
    return 0


def _validate_args(args: argparse.Namespace) -> None:
    """Reject bad analysis parameters at the edge with a clear message.

    Without this, ``--support 0`` (or negative, or > 1) reaches the
    miners and fails with an opaque numpy error.
    """
    if getattr(args, "support", None) is not None:
        args.support = validate_support(args.support)
    if getattr(args, "epsilon", None) is not None:
        args.epsilon = validate_epsilon(args.epsilon)
    if getattr(args, "deadline", None) is not None:
        args.deadline = validate_deadline(args.deadline)


def _dispatch(args: argparse.Namespace) -> None:
    if args.command == "datasets":
        print(format_table(dataset_characteristics(), title="bundled datasets"))
        return

    if args.command == "study":
        from repro.userstudy import run_user_study

        result = run_user_study(seed=args.seed, n_users=args.users)
        rows = [
            {
                "group": g.group,
                "users": g.n_users,
                "hit %": round(100 * g.hit_rate, 1),
                "partial %": round(100 * g.partial_rate, 1),
            }
            for g in result.groups
        ]
        print(format_table(rows, title=f"injected: ({result.injected})"))
        return

    if args.command == "monitor":
        _run_monitor(args)
        return

    if args.command == "patterns":
        _run_patterns(args)
        return

    if args.command == "compare":
        _run_compare(args)
        return

    if args.command == "rank":
        _run_rank(args)
        return

    if args.command == "report":
        explorer = _load_explorer(args)
        text = divergence_report(
            explorer,
            metrics=[m.strip() for m in args.metrics.split(",") if m.strip()],
            min_support=args.support,
        )
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text)
            print(f"report written to {args.output}")
        else:
            print(text)
        return

    explorer = _load_explorer(args)
    result = explorer.explore(
        args.metric,
        min_support=args.support,
        algorithm=args.algorithm,
        n_workers=args.workers,
        sample=args.sample,
        confidence=args.confidence,
        sample_seed=args.seed,
    )
    if getattr(result, "approximate", False):
        print(
            f"approximate: mined {result.sample_rows} of "
            f"{result.total_rows} rows (confidence {result.confidence:g}; "
            "omit --sample for the exact table)"
        )

    if args.command == "explore":
        if args.epsilon is not None:
            records = result.pruned(args.epsilon)[: args.top]
            title = (f"{args.metric.upper()} top patterns "
                     f"(s={args.support}, ε={args.epsilon})")
        else:
            records = result.top_k(args.top)
            title = f"{args.metric.upper()} top patterns (s={args.support})"
        print(f"overall {args.metric} = {result.global_rate:.4f}")
        print(format_table(
            records_as_rows(records, f"Δ_{args.metric}"), title=title
        ))
    elif args.command == "shapley":
        pattern = Itemset.parse(args.pattern)
        contributions = result.shapley(pattern)
        print(f"Δ({pattern}) = {result.divergence_of(pattern):+.4f}")
        for item, value in sorted(
            contributions.items(), key=lambda kv: -abs(kv[1])
        ):
            print(f"  {str(item):40s} {value:+.4f}")
    elif args.command == "global":
        global_div = result.global_item_divergence()
        individual = result.individual_item_divergence()
        rows = [
            {
                "item": str(item),
                "global": round(value, 4),
                "individual": round(individual.get(item, float("nan")), 4),
            }
            for item, value in sorted(
                global_div.items(), key=lambda kv: -kv[1]
            )[: args.top]
        ]
        print(format_table(rows, title="global vs individual item divergence"))
    elif args.command == "corrective":
        for c in result.corrective_items(args.top):
            print(c)
    elif args.command == "significant":
        records = result.significant(alpha=args.alpha, k=args.top)
        print(
            f"{len(records)} patterns survive BH FDR control "
            f"at alpha={args.alpha}"
        )
        print(format_table(
            records_as_rows(records, f"Δ_{args.metric}"),
            title=f"{args.metric.upper()} significant patterns",
        ))
    elif args.command == "lattice":
        lattice = result.lattice(Itemset.parse(args.pattern))
        if args.dot:
            print(lattice_to_dot(lattice, threshold=args.threshold))
        else:
            print(lattice.render(threshold=args.threshold))


def _run_rank(args: argparse.Namespace) -> None:
    """Exposure/rank divergence over all frequent subgroups."""
    from repro.rank import RankDivergenceExplorer, dataset_scores

    if args.dataset and args.csv:
        raise ReproError("pass either --dataset or --csv, not both")
    if args.weight_model == "topk" and args.rank_k is None:
        raise ReproError("--weight-model topk requires --rank-k")
    if args.dataset:
        data = load(args.dataset, seed=args.seed)
        table = data.table
        attributes = list(data.attributes)
        name = args.score_column
        if name in table and table.column(name).is_continuous:
            scores = table.continuous(name).values
        else:
            scores = dataset_scores(
                data, classifier=args.classifier, seed=args.seed
            )
    elif args.csv:
        raw = read_csv(args.csv)
        name = args.score_column
        if name not in raw or not raw.column(name).is_continuous:
            raise ReproError(
                f"CSV input needs a continuous score column "
                f"(--score-column {name!r} not found or not numeric)"
            )
        # Pull the scores out before discretization would bin them.
        scores = raw.continuous(name).values
        table = discretize_table(
            raw.without_columns([name]), default_bins=args.bins
        )
        excluded = {args.true_column, args.pred_column}
        attributes = [
            n for n in table.categorical_names if n not in excluded
        ]
    else:
        raise ReproError("one of --dataset or --csv is required")

    explorer = RankDivergenceExplorer(table, scores, attributes=attributes)
    result = explorer.explore(
        weight_model=args.weight_model,
        min_support=args.support,
        topk=args.rank_k,
        algorithm=args.algorithm,
        n_workers=args.workers,
    )
    print(
        f"global mean {result.metric} weight = {result.global_rate:.4f} "
        f"({len(result) - 1} patterns at s={args.support})"
    )
    records = result.top_k(args.top, by="abs_divergence")
    rows = [
        {
            "itemset": str(r.itemset),
            "sup": round(r.support, 3),
            "mean": round(r.mean, 4),
            f"Δ_{result.metric}": round(r.divergence, 4),
            "t": round(r.t_statistic, 1),
        }
        for r in records
    ]
    print(format_table(
        rows, title=f"{result.metric} divergence top patterns"
    ))


def _run_compare(args: argparse.Namespace) -> None:
    """Shared-lattice model comparison: shifts and regressions per model."""
    from repro.core.compare import explore_compare, resolve_models

    if args.dataset and args.csv:
        raise ReproError("pass either --dataset or --csv, not both")
    attributes = None
    if args.dataset:
        data = load(args.dataset, seed=args.seed)
        table, true_column = data.table, data.true_column
        attributes = [a for a in data.attributes if a not in set(args.models)]
    elif args.csv:
        table = discretize_table(read_csv(args.csv), default_bins=args.bins)
        true_column = args.true_column
    else:
        raise ReproError("one of --dataset or --csv is required")

    baseline = args.baseline or args.models[0]
    if baseline not in args.models:
        raise ReproError(
            f"baseline {baseline!r} must be one of --models {args.models}"
        )
    resolved = resolve_models(
        table, true_column, args.models, attributes=attributes, seed=args.seed
    )
    comparison = explore_compare(
        table,
        true_column,
        resolved,
        metric=args.metric,
        min_support=args.support,
        attributes=attributes,
        algorithm=args.algorithm,
        n_workers=args.workers,
    )
    print(
        f"compared {len(args.models)} models over "
        f"{comparison.n_patterns} shared patterns "
        f"(metric={args.metric}, s={args.support})"
    )
    for name, rate in comparison.global_rates.items():
        marker = "  (baseline)" if name == baseline else ""
        print(f"  overall {args.metric} {name} = {rate:.4f}{marker}")
    for name in comparison.model_names:
        if name == baseline:
            continue
        shifts = comparison.shifts(
            name, baseline=baseline, k=args.top, min_t=args.min_t
        )
        rows = [
            {
                "itemset": str(s.itemset),
                "Δ_a": _fmt(s.divergence_a),
                "Δ_b": _fmt(s.divergence_b),
                "shift": _fmt(s.shift),
                "t": _fmt(s.t_statistic, 1),
                "δ": _fmt(s.delta_divergence),
            }
            for s in shifts
        ]
        if rows:
            print(format_table(
                rows, title=f"top shifts: {baseline} -> {name}"
            ))
        else:
            print(f"no shifts pass |t| >= {args.min_t} for {name}")
        worse = comparison.regressions(
            name, baseline=baseline, k=args.top,
            min_t=max(args.min_t, 2.0),
        )
        if worse:
            rows = [
                {
                    "itemset": str(s.itemset),
                    "Δ_a": _fmt(s.divergence_a),
                    "Δ_b": _fmt(s.divergence_b),
                    "worse by": _fmt(abs(s.divergence_b) - abs(s.divergence_a)),
                    "t": _fmt(s.t_statistic, 1),
                }
                for s in worse
            ]
            print(format_table(
                rows, title=f"regressions: {baseline} -> {name}"
            ))
        else:
            print(f"no significant regressions: {baseline} -> {name}")


def _run_monitor(args: argparse.Namespace) -> None:
    """Replay a dataset through the streaming monitor and print alerts."""
    from repro.store import PatternStore
    from repro.stream import DriftConfig, DriftInjection, replay

    drift = DriftConfig(
        min_delta=args.alert_delta,
        min_t=args.alert_t,
        churn_threshold=args.churn,
        top_k=args.top,
    )
    injection = (
        DriftInjection(args.inject, at_fraction=args.inject_at)
        if args.inject
        else None
    )
    store = PatternStore(args.store) if args.store else None
    try:
        report = replay(
            args.dataset,
            metric=args.metric,
            batch_size=args.batch_size,
            window=args.window,
            step=args.step,
            min_support=args.support,
            algorithm=args.algorithm,
            drift=drift,
            injection=injection,
            seed=args.seed,
            max_rows=args.max_rows,
            n_workers=args.workers,
            store=store,
        )
    finally:
        if store is not None:
            stats = store.stats()
            store.close()
            print(
                f"pattern store {stats['path']}: {stats['patterns']} "
                f"patterns, {stats['bytes']} bytes, "
                f"{stats['alerted']} alerted"
            )
    monitor = report.monitor
    policy = monitor.policy
    print(
        f"replayed {args.dataset}: {report.n_rows} rows in "
        f"{report.n_batches} batches, {len(monitor.windows)} windows "
        f"(window={policy.size}, step={policy.step}, s={args.support})"
    )
    if report.injected_pattern is not None:
        print(
            f"injected drift into '{report.injected_pattern}' at row "
            f"{report.injection_row} (window {report.injection_window}); "
            f"{report.injected_rows} outcomes flipped"
        )
    alerts = report.alerts
    if not alerts:
        print("no drift alerts fired")
    else:
        rows = [
            {
                "window": a.kind == "rank_churn" and f"{a.window_index} *churn*"
                or a.window_index,
                "itemset": a.itemset or f"top-{drift.top_k} churn "
                f"{a.churn:.2f}",
                "Δ_prev": _fmt(a.prev_divergence),
                "Δ_cur": _fmt(a.cur_divergence),
                "delta": _fmt(a.delta),
                "t": _fmt(a.t_statistic, 1),
            }
            for a in alerts
        ]
        print(format_table(
            rows, title=f"drift alerts (δ>={drift.min_delta}, t>={drift.min_t})"
        ))
        print(f"{len(alerts)} alerts over {len(monitor.windows)} windows")
    if report.injected_key is not None:
        detected = report.detection_window()
        if detected is None:
            print("injected drift NOT detected")
        else:
            lag = detected - (report.injection_window or 0)
            print(
                f"injected drift detected in window {detected} "
                f"(lag {lag} windows, {len(report.matching_alerts())} "
                "matching alerts)"
            )


def _run_patterns(args: argparse.Namespace) -> None:
    """Inspect or manage a durable pattern store from the CLI."""
    import os

    from repro.store import PatternStore

    if not os.path.exists(args.store):
        raise ReproError(
            f"no pattern store at {args.store!r} "
            "(create one with 'monitor --store' or the app server)"
        )
    with PatternStore(args.store, auto_compact=False) as store:
        if args.ack or args.unack:
            raw = args.ack if args.ack else args.unack
            try:
                key = [int(part) for part in raw.split(",") if part.strip()]
            except ValueError:
                raise ReproError(
                    f"--ack/--unack key must be comma-separated item ids, "
                    f"got {raw!r}"
                ) from None
            entry = store.ack(key, acked=bool(args.ack), note=args.note)
            state = "acknowledged" if args.ack else "reopened"
            print(f"{state} {entry['itemset']} (key {entry['key']})")
            return
        if args.compact:
            before = store.stats()["bytes"]
            store.compact()
            after = store.stats()["bytes"]
            print(f"compacted {args.store}: {before} -> {after} bytes")
            return
        acked = True if args.acked else (False if args.unacked else None)
        payload = store.query(
            offset=args.offset,
            limit=args.limit,
            acked=acked,
            min_divergence=args.min_divergence,
            since_window=args.since_window,
        )
        stats = store.stats()
    rows = [
        {
            "key": ",".join(str(i) for i in entry["key"]),
            "itemset": entry["itemset"],
            "Δ": _fmt(
                entry["divergence"]
                if entry["divergence"] is not None
                else float("nan")
            ),
            "sup": _fmt(
                entry["support"]
                if entry["support"] is not None
                else float("nan")
            ),
            "windows": entry["windows_seen"],
            "alerts": entry["alerts"],
            "acked": "yes" if entry["acked"] else "",
            "last seen": entry["last_seen_window"],
        }
        for entry in payload["patterns"]
    ]
    title = (
        f"pattern store {args.store} "
        f"({payload['total']} matching of {stats['patterns']} patterns, "
        f"last window {payload['last_window']})"
    )
    if rows:
        print(format_table(rows, title=title))
    else:
        print(title)
        print("no patterns match the filters")
    shown_to = args.offset + len(rows)
    if shown_to < payload["total"]:
        print(
            f"showing {args.offset}..{shown_to} of {payload['total']}; "
            f"rerun with --offset {shown_to}"
        )


def _fmt(value: float, digits: int = 3) -> str:
    import math as _math

    return "-" if _math.isnan(value) else f"{value:+.{digits}f}"


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
