"""Subgroup fairness metrics from one multi-metric exploration.

Definitions (subgroup g vs the overall population):

- statistical parity difference  SPD(g) = P(û=1 | g) − P(û=1)
- disparate impact               DI(g)  = P(û=1 | g) / P(û=1)
- equal opportunity difference   EOD(g) = TPR(g) − TPR
- average odds difference        AOD(g) = ½[(FPR(g) − FPR) + (TPR(g) − TPR)]

Each is a simple function of divergences the library already mines
(``predr``, ``tpr``, ``fpr``), so one mining pass yields the complete
audit for *all* frequent subgroups — the exhaustive analogue of
fixed-protected-attribute audits, covering intersectional subgroups
automatically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.divergence import DivergenceExplorer
from repro.core.items import Itemset
from repro.core.multi import explore_multi
from repro.exceptions import ReproError

_METRICS = ("predr", "tpr", "fpr")


@dataclass(frozen=True)
class FairnessRecord:
    """Fairness measures of one subgroup."""

    itemset: Itemset
    support: float
    statistical_parity_difference: float
    disparate_impact: float
    equal_opportunity_difference: float
    average_odds_difference: float

    def worst_violation(self) -> float:
        """Largest absolute deviation across the difference measures."""
        return max(
            abs(self.statistical_parity_difference),
            abs(self.equal_opportunity_difference),
            abs(self.average_odds_difference),
        )


class FairnessReport:
    """Fairness measures for every frequent subgroup."""

    def __init__(self, records: list[FairnessRecord]) -> None:
        self._records = records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def record(self, itemset: Itemset) -> FairnessRecord:
        """Measures for one subgroup (raises if not frequent)."""
        for rec in self._records:
            if rec.itemset == itemset:
                return rec
        raise ReproError(f"subgroup ({itemset}) not in the report")

    def worst(self, k: int = 10, by: str = "worst") -> list[FairnessRecord]:
        """Top-k subgroups by fairness violation.

        ``by``: ``"worst"`` (max absolute difference), ``"spd"``,
        ``"eod"``, ``"aod"`` or ``"di"`` (distance of the ratio from 1).
        """
        key_fn = {
            "worst": lambda r: r.worst_violation(),
            "spd": lambda r: abs(r.statistical_parity_difference),
            "eod": lambda r: abs(r.equal_opportunity_difference),
            "aod": lambda r: abs(r.average_odds_difference),
            "di": lambda r: abs(math.log(r.disparate_impact))
            if r.disparate_impact > 0
            else math.inf,
        }.get(by)
        if key_fn is None:
            raise ReproError(f"unknown ranking {by!r}")
        usable = [r for r in self._records if not math.isnan(key_fn(r))]
        usable.sort(key=key_fn, reverse=True)
        return usable[:k]


def fairness_audit(
    explorer: DivergenceExplorer,
    min_support: float = 0.05,
    max_length: int | None = None,
) -> FairnessReport:
    """Audit every frequent subgroup for group-fairness violations.

    One mining pass computes predicted-positive-rate, TPR and FPR
    divergences simultaneously; the fairness measures are derived per
    subgroup.
    """
    results = explore_multi(
        explorer, list(_METRICS), min_support=min_support, max_length=max_length
    )
    predr, tpr, fpr = (results[m] for m in _METRICS)
    overall_predr = predr.global_rate

    records: list[FairnessRecord] = []
    for key in predr.frequent:
        if len(key) == 0:
            continue
        rec_p = predr.record_for_key(key)
        rec_t = tpr.record_for_key(key)
        rec_f = fpr.record_for_key(key)
        spd = rec_p.divergence
        di = (
            rec_p.rate / overall_predr
            if overall_predr and not math.isnan(rec_p.rate)
            else float("nan")
        )
        eod = rec_t.divergence
        if math.isnan(rec_f.divergence) or math.isnan(eod):
            aod = float("nan")
        else:
            aod = 0.5 * (rec_f.divergence + eod)
        records.append(
            FairnessRecord(
                itemset=rec_p.itemset,
                support=rec_p.support,
                statistical_parity_difference=spd,
                disparate_impact=di,
                equal_opportunity_difference=eod,
                average_odds_difference=aod,
            )
        )
    return FairnessReport(records)
