"""Group-fairness metrics built on the divergence machinery.

The paper motivates divergence as a fairness-diagnosis tool (Sec. 1-2,
citing AIF360/Aequitas-style audits). This subpackage computes the
standard group-fairness measures — statistical parity difference,
disparate impact, equal opportunity difference, average odds difference
— for every frequent subgroup at once, by reusing the multi-metric
single-pass exploration.
"""

from repro.fairness.metrics import (
    FairnessRecord,
    FairnessReport,
    fairness_audit,
)

__all__ = ["FairnessRecord", "FairnessReport", "fairness_audit"]
