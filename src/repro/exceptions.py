"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything emitted by this package with one ``except`` clause while
still letting programming errors (``TypeError`` from misuse of numpy,
etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table or column was used in a way inconsistent with its schema.

    Examples: referencing a column that does not exist, adding a column
    whose length differs from the table's row count, or building an
    itemset with two items over the same attribute.
    """


class DiscretizationError(ReproError):
    """A continuous column could not be discretized as requested."""


class MiningError(ReproError):
    """Frequent-pattern mining was invoked with invalid parameters."""


class NotFittedError(ReproError):
    """A model or explorer was queried before being fitted/run."""


class DatasetError(ReproError):
    """A synthetic dataset generator received invalid parameters."""
