"""repro — reproduction of DivExplorer (Pastor, de Alfaro, Baralis, SIGMOD 2021).

"Looking for Trouble: Analyzing Classifier Behavior via Pattern
Divergence": exhaustive divergence analysis of classifier behaviour over
all sufficiently supported data subgroups (itemsets), with Shapley-based
local and global item contributions, corrective items, Bayesian
significance, redundancy pruning and lattice exploration.

Quickstart::

    from repro import DivergenceExplorer, datasets

    data = datasets.load("compas", seed=0)
    explorer = DivergenceExplorer(data.table, data.true_column, data.pred_column)
    result = explorer.explore(metric="fpr", min_support=0.1)
    for record in result.top_k(3):
        print(record.itemset, record.divergence, record.t_statistic)
"""

from repro import datasets, fairness
from repro.approx import ApproxResult, progressive_explore
from repro.core.compare import (
    CompareResult,
    PatternShift,
    compare_results,
    compare_results_reference,
    delta_columns,
    explore_compare,
    regressions,
    regressions_reference,
    resolve_models,
)
from repro.core.continuous import ContinuousDivergenceExplorer
from repro.core.multi import explore_multi
from repro.core.serialize import lattice_to_dot, result_from_json, result_to_json
from repro.core.shapley_sampling import shapley_contributions_sampled
from repro.core.corrective import CorrectiveItem, find_corrective_items
from repro.core.divergence import DivergenceExplorer
from repro.core.global_divergence import (
    global_divergence_of_itemset,
    global_item_divergence,
    individual_item_divergence,
)
from repro.core.explanations import explain_top_k
from repro.core.items import Item, Itemset
from repro.core.lattice import DivergenceLattice
from repro.core.lattice_index import LatticeIndex
from repro.core.outcomes import OUTCOME_METRICS, outcome_metric
from repro.core.pruning import prune_redundant
from repro.core.result import PatternDivergenceResult, PatternRecord
from repro.rank import RankDivergenceExplorer, RankDivergenceResult
from repro.core.shapley import shapley_batch, shapley_contributions
from repro.exceptions import ReproError
from repro.stream import (
    DivergenceMonitor,
    DriftAlert,
    DriftConfig,
    DriftInjection,
    StreamBuffer,
)
from repro.tabular.discretize import BinSpec, discretize_table
from repro.tabular.io import read_csv, write_csv
from repro.tabular.table import Table

__version__ = "1.0.0"

__all__ = [
    "ApproxResult",
    "BinSpec",
    "CompareResult",
    "ContinuousDivergenceExplorer",
    "CorrectiveItem",
    "DivergenceExplorer",
    "DivergenceLattice",
    "DivergenceMonitor",
    "DriftAlert",
    "DriftConfig",
    "DriftInjection",
    "Item",
    "Itemset",
    "LatticeIndex",
    "PatternShift",
    "OUTCOME_METRICS",
    "PatternDivergenceResult",
    "PatternRecord",
    "RankDivergenceExplorer",
    "RankDivergenceResult",
    "ReproError",
    "StreamBuffer",
    "Table",
    "__version__",
    "compare_results",
    "compare_results_reference",
    "datasets",
    "delta_columns",
    "explain_top_k",
    "explore_compare",
    "explore_multi",
    "fairness",
    "discretize_table",
    "find_corrective_items",
    "lattice_to_dot",
    "global_divergence_of_itemset",
    "global_item_divergence",
    "individual_item_divergence",
    "outcome_metric",
    "progressive_explore",
    "prune_redundant",
    "regressions",
    "regressions_reference",
    "resolve_models",
    "result_from_json",
    "result_to_json",
    "read_csv",
    "shapley_batch",
    "shapley_contributions",
    "shapley_contributions_sampled",
    "write_csv",
]
