"""Shared dataset record type (separate module to avoid import cycles)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tabular.table import Table


@dataclass
class LoadedDataset:
    """A generated dataset, ready for divergence exploration.

    Attributes
    ----------
    table:
        Discretized table including the class and (optionally) the
        prediction column.
    raw_table:
        The pre-discretization table (continuous columns intact); used
        by the discretization experiments.
    true_column / pred_column:
        Column names of ground truth ``v`` and prediction ``u``.
        ``pred_column`` is ``None`` until predictions are attached.
    attributes:
        The analysis attributes, in schema order.
    n_continuous / n_categorical:
        Schema statistics reported in Table 4.
    """

    name: str
    table: Table
    true_column: str
    attributes: list[str]
    n_continuous: int
    n_categorical: int
    pred_column: str | None = None
    raw_table: Table | None = field(default=None, repr=False)

    @property
    def n_rows(self) -> int:
        """``|D|``."""
        return self.table.n_rows

    @property
    def n_attributes(self) -> int:
        """``|A|``."""
        return len(self.attributes)

    def truth_array(self):
        """Ground-truth labels as a boolean numpy array."""
        import numpy as np

        return np.asarray(
            self.table.categorical(self.true_column).values_as_objects()
        ).astype(bool)

    def encoded_features(self):
        """Dictionary-encoded attribute matrix for the ML models."""
        return self.table.encoded_matrix(self.attributes)
