"""Synthetic dataset generators (substrate).

The paper evaluates on COMPAS (ProPublica) and five UCI datasets, none
of which can be downloaded in this offline environment. Each generator
here reproduces the published schema, the cardinalities of Table 4 and
the statistical structure that drives the paper's findings (documented
per generator). The ``artificial`` dataset follows the paper's exact
construction (Sec. 4.4).
"""

from repro.datasets.registry import (
    DATASET_NAMES,
    LoadedDataset,
    dataset_characteristics,
    load,
)

__all__ = [
    "DATASET_NAMES",
    "LoadedDataset",
    "dataset_characteristics",
    "load",
]
