"""Synthetic COMPAS-like recidivism dataset.

Substitute for the ProPublica COMPAS data [3]: 6,172 defendants with 6
attributes (age and #priors continuous; race, sex, charge degree and
jail-stay categorical), a two-year recidivism ground truth and a
COMPAS-style high-risk flag as the prediction.

The generator plants the bias structure the paper reports so that every
COMPAS experiment reproduces in shape:

- the high-risk flag is conservative overall (low FPR ≈ 0.09, high
  FNR ≈ 0.70, paper Sec. 1);
- false positives concentrate on African-American defendants aged
  25-45 with >3 priors (Table 1/2 FPR patterns);
- false negatives concentrate on Caucasian defendants over 45 and on
  misdemeanour charges with short jail stays and few priors (FNR
  patterns);
- having no priors *corrects* the race-driven FPR divergence
  (Table 3 corrective items), because the planted prior-count effect is
  negative for #prior=0 and cancels the race effect.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry_types import LoadedDataset
from repro.datasets.sampling import bernoulli, categorical_sample, mask_for, seeded_generator, sigmoid
from repro.exceptions import DatasetError
from repro.tabular.column import CategoricalColumn, ContinuousColumn
from repro.tabular.discretize import BinSpec, discretize_table
from repro.tabular.table import Table

N_ROWS = 6172

#: Interval edges/labels for the 3-bin discretization used in most
#: experiments and the 6-bin refinement of Fig. 1.
PRIORS_SPECS = {
    3: BinSpec(method="edges", edges=(0.5, 3.5), labels=("0", "[1,3]", ">3")),
    6: BinSpec(
        method="edges",
        edges=(0.5, 1.5, 2.5, 3.5, 7.5),
        labels=("0", "1", "2", "3", "[4,7]", ">7"),
    ),
}

AGE_SPEC = BinSpec(method="edges", edges=(25.0, 45.0), labels=("<25", "25-45", ">45"))


def generate(seed: int = 0, priors_bins: int = 3, n_rows: int = N_ROWS) -> LoadedDataset:
    """Generate the COMPAS-like dataset.

    Parameters
    ----------
    seed:
        RNG seed; the same seed always yields the same dataset.
    priors_bins:
        3 (default) or 6 — the #prior discretization granularity
        (Fig. 1 contrasts the two).
    n_rows:
        Dataset size (paper: 6,172).
    """
    if priors_bins not in PRIORS_SPECS:
        raise DatasetError(f"priors_bins must be one of {sorted(PRIORS_SPECS)}")
    if n_rows < 10:
        raise DatasetError("n_rows too small for a meaningful dataset")
    rng = seeded_generator(seed)

    race = categorical_sample(
        rng, n_rows, ["African-American", "Caucasian", "Other"], [0.51, 0.34, 0.15]
    )
    sex = categorical_sample(rng, n_rows, ["Male", "Female"], [0.81, 0.19])
    charge = categorical_sample(rng, n_rows, ["F", "M"], [0.64, 0.36])

    aa = mask_for(race, "African-American")
    cauc = mask_for(race, "Caucasian")
    male = mask_for(sex, "Male")
    felony = mask_for(charge, "F")

    # Age: skewed young; African-American defendants skew younger and
    # Caucasian defendants older in the source data, which couples race
    # with the age patterns.
    age = 18 + rng.gamma(shape=2.4, scale=7.5, size=n_rows)
    age = np.where(aa, age - 2.5, age)
    age = np.where(cauc, age + 3.0, age)
    age = np.clip(age, 18, 80)

    # Priors: overdispersed count, higher for older defendants (more
    # history), males and African-American defendants (as in the source).
    prior_rate = np.exp(
        -0.9 + 0.55 * aa + 0.30 * male + 0.012 * (age - 30) + rng.normal(0, 1.2, n_rows)
    )
    priors = rng.poisson(prior_rate * 1.9).astype(float)
    priors = np.clip(priors, 0, 38)

    # Jail stay: felonies stay longer.
    stay_probs = np.where(
        felony[:, None],
        np.array([0.45, 0.33, 0.22]),
        np.array([0.75, 0.18, 0.07]),
    )
    stay_cats = ["<week", "1w-3M", ">3M"]
    u_draw = rng.random(n_rows)
    cum = np.cumsum(stay_probs, axis=1)
    stay_idx = (u_draw[:, None] > cum).sum(axis=1)
    stay = [stay_cats[i] for i in stay_idx]

    # Ground truth: two-year recidivism (base rate ~0.45), driven mainly
    # by priors and youth.
    z_truth = (
        -0.85
        + 0.20 * priors
        - 0.032 * (age - 30)
        + 0.25 * male
        + 0.10 * felony
    )
    truth = bernoulli(rng, sigmoid(z_truth))

    # COMPAS-like high-risk flag: conservative (positives are rare) with
    # the planted bias structure described in the module docstring.
    many_priors = priors > 3
    some_priors = (priors >= 1) & (priors <= 3)
    no_priors = priors == 0
    mid_age = (age >= 25) & (age <= 45)
    old = age > 45
    short_stay = np.array([s == "<week" for s in stay])
    misdemeanor = ~felony

    p_fp = (
        0.045
        + 0.100 * many_priors
        + 0.015 * some_priors
        - 0.040 * no_priors
        + 0.050 * aa
        + 0.040 * (aa & mid_age)
        + 0.060 * (aa & many_priors)
        + 0.012 * male
        - 0.020 * old
    )
    p_tp = (
        0.32
        + 0.22 * many_priors
        + 0.02 * some_priors
        - 0.17 * no_priors
        + 0.10 * aa
        - 0.12 * cauc
        - 0.16 * old
        - 0.10 * short_stay
        - 0.11 * misdemeanor
    )
    prob_pred = np.where(truth, np.clip(p_tp, 0.01, 0.95), np.clip(p_fp, 0.005, 0.9))
    pred = bernoulli(rng, prob_pred)

    raw = Table(
        [
            ContinuousColumn("age", age),
            ContinuousColumn("#prior", priors),
            CategoricalColumn.from_values("race", race),
            CategoricalColumn.from_values("sex", sex),
            CategoricalColumn.from_values("charge", charge),
            CategoricalColumn.from_values("stay", stay),
            CategoricalColumn("class", truth.astype(np.int32), [0, 1]),
            CategoricalColumn("pred", pred.astype(np.int32), [0, 1]),
        ]
    )
    table = discretize_table(
        raw, specs={"age": AGE_SPEC, "#prior": PRIORS_SPECS[priors_bins]}
    )
    return LoadedDataset(
        name="compas",
        table=table,
        raw_table=raw,
        true_column="class",
        pred_column="pred",
        attributes=["age", "#prior", "race", "sex", "charge", "stay"],
        n_continuous=2,
        n_categorical=4,
    )
