"""Synthetic *Bank Marketing* dataset.

Substitute for the UCI Bank Marketing data [17]: 11,162 clients of a
Portuguese bank direct-marketing campaign, 15 attributes (6 continuous,
9 categorical), class = term-deposit subscription. Used by the paper
for the performance experiments; the generator matches schema,
cardinality and plants a learnable subscription signal (call duration,
prior outcome, balance).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry_types import LoadedDataset
from repro.datasets.sampling import bernoulli, seeded_generator, sigmoid
from repro.exceptions import DatasetError
from repro.tabular.discretize import discretize_table
from repro.tabular.table import Table

N_ROWS = 11_162


def generate(seed: int = 0, n_rows: int = N_ROWS) -> LoadedDataset:
    """Generate the bank-marketing-like dataset (predictions attached by
    :func:`repro.datasets.load`)."""
    if n_rows < 50:
        raise DatasetError("n_rows too small for a meaningful dataset")
    rng = seeded_generator(seed)

    age = np.clip(rng.normal(41, 12, n_rows), 18, 95)
    job = rng.choice(
        ["admin", "blue-collar", "technician", "services", "management",
         "retired", "self-employed", "student", "unemployed", "other"],
        size=n_rows,
        p=[0.23, 0.21, 0.16, 0.09, 0.09, 0.06, 0.04, 0.04, 0.03, 0.05],
    )
    marital = rng.choice(
        ["married", "single", "divorced"], size=n_rows, p=[0.57, 0.32, 0.11]
    )
    education = rng.choice(
        ["primary", "secondary", "tertiary", "unknown"],
        size=n_rows, p=[0.14, 0.49, 0.33, 0.04],
    )
    default = rng.choice(["no", "yes"], size=n_rows, p=[0.98, 0.02])
    balance = rng.normal(1500, 2800, n_rows)
    housing = rng.choice(["yes", "no"], size=n_rows, p=[0.53, 0.47])
    loan = rng.choice(["no", "yes"], size=n_rows, p=[0.87, 0.13])
    contact = rng.choice(
        ["cellular", "telephone", "unknown"], size=n_rows, p=[0.72, 0.07, 0.21]
    )
    month = rng.choice(
        ["jan", "feb", "mar", "apr", "may", "jun",
         "jul", "aug", "sep", "oct", "nov", "dec"],
        size=n_rows,
        p=[0.03, 0.06, 0.02, 0.07, 0.25, 0.11, 0.15, 0.14, 0.02, 0.03, 0.10, 0.02],
    )
    day = np.clip(rng.integers(1, 32, n_rows).astype(float), 1, 31)
    duration = np.clip(rng.gamma(1.7, 220.0, n_rows), 2, 4000)
    campaign = np.clip(rng.geometric(0.42, n_rows).astype(float), 1, 40)
    pdays = np.where(rng.random(n_rows) < 0.74, -1.0, rng.gamma(3.0, 80.0, n_rows))
    poutcome = rng.choice(
        ["unknown", "failure", "success", "other"],
        size=n_rows, p=[0.74, 0.12, 0.09, 0.05],
    )

    z_deposit = (
        -0.55
        + 0.0021 * (duration - 350)
        + 1.3 * (poutcome == "success")
        + 0.00006 * (balance - 1200)
        - 0.35 * (housing == "yes")
        - 0.30 * (loan == "yes")
        + 0.35 * (job == "retired")
        + 0.40 * (job == "student")
        - 0.12 * (campaign - 2)
        + 0.25 * (contact == "cellular")
    )
    deposit = bernoulli(rng, sigmoid(z_deposit))

    raw = Table.from_dict(
        {
            "age": age,
            "job": list(job),
            "marital": list(marital),
            "education": list(education),
            "default": list(default),
            "balance": balance,
            "housing": list(housing),
            "loan": list(loan),
            "contact": list(contact),
            "day": day,
            "month": list(month),
            "duration": duration,
            "campaign": campaign,
            "pdays": pdays,
            "poutcome": list(poutcome),
            "class": deposit.astype(int),
        }
    )
    table = discretize_table(raw, default_bins=3)
    attrs = [n for n in raw.column_names if n != "class"]
    return LoadedDataset(
        name="bank",
        table=table,
        raw_table=raw,
        true_column="class",
        pred_column=None,
        attributes=attrs,
        n_continuous=6,
        n_categorical=9,
    )
