"""The *artificial* dataset (paper Sec. 4.4), exact construction.

50,000 instances, 10 binary attributes ``a..j`` set independently and
uniformly at random. The class label is TRUE iff ``a = b = c``. A
classifier is trained on that label (here the label rule itself — our
decision tree recovers it exactly, and the paper never retrains after
the flip), then classification errors are simulated by flipping the
*ground-truth* label for half the instances with ``a = b = c``.

The result: false positives concentrate exactly on the itemsets
``a=b=c=1`` and ``a=b=c=0``, while every single attribute in isolation
looks innocent — the showcase for global item divergence (Fig. 4) and
for the Slice Finder comparison (Sec. 6.5).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry_types import LoadedDataset
from repro.datasets.sampling import seeded_generator
from repro.exceptions import DatasetError
from repro.tabular.table import Table

N_ROWS = 50_000
ATTRIBUTES = list("abcdefghij")


def generate(seed: int = 0, n_rows: int = N_ROWS) -> LoadedDataset:
    """Generate the artificial dataset with planted joint divergence."""
    if n_rows < 10:
        raise DatasetError("n_rows too small for a meaningful dataset")
    rng = seeded_generator(seed)
    matrix = rng.integers(0, 2, size=(n_rows, len(ATTRIBUTES)))

    a, b, c = matrix[:, 0], matrix[:, 1], matrix[:, 2]
    rule = (a == b) & (b == c)

    # The classifier output: the trained model predicts the original rule.
    pred = rule.copy()

    # Simulate classification errors: flip the class label for half of
    # the instances in a = b = c (paper Sec. 4.4), without retraining.
    truth = rule.copy()
    rule_idx = np.flatnonzero(rule)
    flip = rng.choice(rule_idx, size=rule_idx.size // 2, replace=False)
    truth[flip] = ~truth[flip]

    data: dict[str, list] = {
        name: [int(v) for v in matrix[:, j]] for j, name in enumerate(ATTRIBUTES)
    }
    data["class"] = [int(v) for v in truth]
    data["pred"] = [int(v) for v in pred]
    table = Table.from_dict(data)
    return LoadedDataset(
        name="artificial",
        table=table,
        raw_table=table,
        true_column="class",
        pred_column="pred",
        attributes=list(ATTRIBUTES),
        n_continuous=0,
        n_categorical=10,
    )
