"""Synthetic *German Credit* dataset.

Substitute for the UCI German Credit Data [17]: 1,000 loan applications
with 21 attributes (7 continuous, 14 categorical) and a binary credit
risk class. The paper uses this dataset primarily for the performance
experiments (Figs. 6-7), where its distinguishing property is the
largest attribute count — which makes it the slowest dataset to mine at
low support. The generator reproduces the schema, attribute
cardinalities and a learnable risk signal.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry_types import LoadedDataset
from repro.datasets.sampling import bernoulli, seeded_generator, sigmoid
from repro.exceptions import DatasetError
from repro.tabular.discretize import discretize_table
from repro.tabular.table import Table

N_ROWS = 1000


def generate(seed: int = 0, n_rows: int = N_ROWS) -> LoadedDataset:
    """Generate the german-credit-like dataset (predictions attached by
    :func:`repro.datasets.load`)."""
    if n_rows < 50:
        raise DatasetError("n_rows too small for a meaningful dataset")
    rng = seeded_generator(seed)

    checking = rng.choice(
        ["<0", "0-200", ">200", "none"], size=n_rows, p=[0.27, 0.27, 0.06, 0.40]
    )
    duration = np.clip(rng.gamma(2.2, 9.5, n_rows), 4, 72)
    history = rng.choice(
        ["critical", "delayed", "paid", "all-paid", "none"],
        size=n_rows, p=[0.29, 0.09, 0.53, 0.05, 0.04],
    )
    purpose = rng.choice(
        ["car-new", "car-used", "furniture", "tv", "appliances", "repairs",
         "education", "business", "other"],
        size=n_rows, p=[0.23, 0.10, 0.18, 0.28, 0.02, 0.02, 0.05, 0.10, 0.02],
    )
    amount = np.clip(rng.lognormal(7.8, 0.8, n_rows), 250, 19000)
    savings = rng.choice(
        ["<100", "100-500", "500-1000", ">1000", "unknown"],
        size=n_rows, p=[0.60, 0.10, 0.06, 0.05, 0.19],
    )
    employment = rng.choice(
        ["unemployed", "<1y", "1-4y", "4-7y", ">7y"],
        size=n_rows, p=[0.06, 0.17, 0.34, 0.17, 0.26],
    )
    installment_rate = rng.integers(1, 5, n_rows).astype(float)
    sex = rng.choice(["Male", "Female"], size=n_rows, p=[0.69, 0.31])
    civil_status = rng.choice(
        ["single", "married", "divorced"], size=n_rows, p=[0.55, 0.35, 0.10]
    )
    debtors = rng.choice(
        ["none", "co-applicant", "guarantor"], size=n_rows, p=[0.91, 0.04, 0.05]
    )
    residence_since = rng.integers(1, 5, n_rows).astype(float)
    prop = rng.choice(
        ["real-estate", "savings", "car", "none"],
        size=n_rows, p=[0.28, 0.23, 0.33, 0.16],
    )
    age = np.clip(rng.gamma(4.5, 8.0, n_rows), 19, 75)
    plans = rng.choice(["bank", "stores", "none"], size=n_rows, p=[0.14, 0.05, 0.81])
    housing = rng.choice(["rent", "own", "free"], size=n_rows, p=[0.18, 0.71, 0.11])
    existing_credits = rng.integers(1, 5, n_rows).astype(float)
    job = rng.choice(
        ["unskilled", "skilled", "management", "unemployed"],
        size=n_rows, p=[0.20, 0.63, 0.15, 0.02],
    )
    maintenance = rng.integers(1, 3, n_rows).astype(float)
    telephone = rng.choice(["yes", "none"], size=n_rows, p=[0.40, 0.60])
    foreign = rng.choice(["yes", "no"], size=n_rows, p=[0.96, 0.04])

    z_risk = (
        -1.05
        + 0.9 * (checking == "<0")
        + 0.4 * (checking == "0-200")
        + 0.022 * (duration - 20)
        + 0.00009 * (amount - 3000)
        + 0.55 * (savings == "<100")
        + 0.45 * (history == "none")
        - 0.45 * (history == "critical")
        + 0.35 * (employment == "unemployed")
        - 0.012 * (age - 35)
        + 0.25 * (housing == "rent")
        + 0.18 * (plans == "bank")
    )
    bad_risk = bernoulli(rng, sigmoid(z_risk))

    raw = Table.from_dict(
        {
            "checking_account": list(checking),
            "duration": duration,
            "credit_history": list(history),
            "purpose": list(purpose),
            "credit_amount": amount,
            "savings": list(savings),
            "employment_since": list(employment),
            "installment_rate": installment_rate,
            "sex": list(sex),
            "civil_status": list(civil_status),
            "debtors": list(debtors),
            "residence_since": residence_since,
            "property": list(prop),
            "age": age,
            "installment_plans": list(plans),
            "housing": list(housing),
            "existing_credits": existing_credits,
            "job": list(job),
            "num_maintenance": maintenance,
            "telephone": list(telephone),
            "foreign_worker": list(foreign),
            "class": bad_risk.astype(int),
        }
    )
    table = discretize_table(raw, default_bins=3)
    attrs = [n for n in raw.column_names if n != "class"]
    return LoadedDataset(
        name="german",
        table=table,
        raw_table=raw,
        true_column="class",
        pred_column=None,
        attributes=attrs,
        n_continuous=7,
        n_categorical=14,
    )
