"""Synthetic *heart* (Cleveland heart disease) dataset.

Substitute for the UCI heart-disease data [17]: 296 patients, 13
attributes (5 continuous, 8 categorical), class = presence of heart
disease. The smallest dataset of the evaluation; used in the
performance experiments. The generator matches the published schema and
plants the classic clinical signal (chest-pain type, exercise-induced
angina, vessel count, thalassemia).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry_types import LoadedDataset
from repro.datasets.sampling import bernoulli, seeded_generator, sigmoid
from repro.exceptions import DatasetError
from repro.tabular.discretize import discretize_table
from repro.tabular.table import Table

N_ROWS = 296


def generate(seed: int = 0, n_rows: int = N_ROWS) -> LoadedDataset:
    """Generate the heart-disease-like dataset (predictions attached by
    :func:`repro.datasets.load`)."""
    if n_rows < 30:
        raise DatasetError("n_rows too small for a meaningful dataset")
    rng = seeded_generator(seed)

    age = np.clip(rng.normal(54.5, 9.0, n_rows), 29, 77)
    sex = rng.choice(["Male", "Female"], size=n_rows, p=[0.68, 0.32])
    cp = rng.choice(
        ["typical", "atypical", "non-anginal", "asymptomatic"],
        size=n_rows, p=[0.08, 0.17, 0.28, 0.47],
    )
    trestbps = np.clip(rng.normal(131, 17, n_rows), 94, 200)
    chol = np.clip(rng.normal(247, 51, n_rows), 126, 564)
    fbs = rng.choice(["no", "yes"], size=n_rows, p=[0.85, 0.15])
    restecg = rng.choice(
        ["normal", "st-t", "hypertrophy"], size=n_rows, p=[0.49, 0.01, 0.50]
    )
    thalach = np.clip(rng.normal(149, 22, n_rows), 71, 202)
    exang = rng.choice(["no", "yes"], size=n_rows, p=[0.67, 0.33])
    oldpeak = np.clip(rng.gamma(1.2, 0.9, n_rows), 0, 6.2)
    slope = rng.choice(["up", "flat", "down"], size=n_rows, p=[0.47, 0.46, 0.07])
    ca = rng.choice(["0", "1", "2", "3"], size=n_rows, p=[0.58, 0.22, 0.13, 0.07])
    thal = rng.choice(
        ["normal", "fixed", "reversible"], size=n_rows, p=[0.55, 0.06, 0.39]
    )

    z_disease = (
        -1.3
        + 1.5 * (cp == "asymptomatic")
        + 1.0 * (exang == "yes")
        + 0.9 * (thal == "reversible")
        + 0.8 * (ca != "0")
        + 0.55 * (slope == "flat")
        + 0.02 * (age - 54)
        - 0.018 * (thalach - 150)
        + 0.45 * (oldpeak - 1.0)
        + 0.5 * (sex == "Male")
    )
    disease = bernoulli(rng, sigmoid(z_disease))

    raw = Table.from_dict(
        {
            "age": age,
            "sex": list(sex),
            "cp": list(cp),
            "trestbps": trestbps,
            "chol": chol,
            "fbs": list(fbs),
            "restecg": list(restecg),
            "thalach": thalach,
            "exang": list(exang),
            "oldpeak": oldpeak,
            "slope": list(slope),
            "ca": list(ca),
            "thal": list(thal),
            "class": disease.astype(int),
        }
    )
    table = discretize_table(raw, default_bins=3)
    attrs = [n for n in raw.column_names if n != "class"]
    return LoadedDataset(
        name="heart",
        table=table,
        raw_table=raw,
        true_column="class",
        pred_column=None,
        attributes=attrs,
        n_continuous=5,
        n_categorical=8,
    )
