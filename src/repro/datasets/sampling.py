"""Shared sampling helpers for the synthetic dataset generators.

Every seeded draw in the project — synthetic dataset generation *and*
the approximate-exploration row sampler — goes through
:func:`seeded_generator`, so one ``--seed`` value reproduces both the
data and the sample permutations drawn from it.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.exceptions import DatasetError


def seeded_generator(seed: int | None) -> np.random.Generator:
    """The project-wide seeded RNG convention: one PCG64 per seed.

    ``seed=None`` yields an OS-entropy generator (non-reproducible);
    any integer yields the deterministic ``np.random.default_rng(seed)``
    stream. Centralized so dataset generators and the progressive
    sampler (:mod:`repro.approx`) can never drift apart on how a seed
    maps to a bit stream.
    """
    return np.random.default_rng(seed)


def categorical_sample(
    rng: np.random.Generator,
    n: int,
    categories: Sequence[Any],
    probs: Sequence[float] | None = None,
) -> list[Any]:
    """Draw ``n`` values from ``categories`` with optional probabilities."""
    cats = list(categories)
    if not cats:
        raise DatasetError("categories must be non-empty")
    if probs is None:
        idx = rng.integers(0, len(cats), size=n)
    else:
        p = np.asarray(probs, dtype=float)
        if p.shape != (len(cats),) or (p < 0).any():
            raise DatasetError("probs must be non-negative and match categories")
        p = p / p.sum()
        idx = rng.choice(len(cats), size=n, p=p)
    return [cats[i] for i in idx]


def bernoulli(rng: np.random.Generator, probs: np.ndarray) -> np.ndarray:
    """Sample one Bernoulli per row with per-row probability ``probs``."""
    p = np.clip(np.asarray(probs, dtype=float), 0.0, 1.0)
    return rng.random(p.shape) < p


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically clipped logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


def mask_for(values: list[Any], target: Any) -> np.ndarray:
    """Boolean mask of positions equal to ``target``."""
    return np.array([v == target for v in values], dtype=bool)
