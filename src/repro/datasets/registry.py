"""Dataset registry: name-based loading plus Table 4 characteristics.

``load(name)`` generates the dataset and — for datasets that don't
carry built-in predictions (everything except COMPAS and artificial) —
trains a classifier on a 70% split to provide the classification
outcome ``u``, as the paper does with "a random forest classifier with
default parameters". Results are cached per ``(name, seed, classifier,
options)`` so experiments can re-load cheaply.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.datasets import adult, artificial, bank, compas, german, heart, ranking
from repro.datasets.registry_types import LoadedDataset
from repro.exceptions import DatasetError
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.naive_bayes import CategoricalNaiveBayes
from repro.ml.splits import train_test_split
from repro.ml.tree import DecisionTreeClassifier
from repro.tabular.column import CategoricalColumn

_GENERATORS = {
    "adult": adult.generate,
    "artificial": artificial.generate,
    "bank": bank.generate,
    "compas": compas.generate,
    "german": german.generate,
    "heart": heart.generate,
    "ranking": ranking.generate,
}

DATASET_NAMES = tuple(sorted(_GENERATORS))

_CLASSIFIERS = {
    # Forest defaults kept modest: pure-python trees on 45k rows.
    "forest": lambda seed: RandomForestClassifier(n_trees=10, max_depth=10, seed=seed),
    "tree": lambda seed: DecisionTreeClassifier(max_depth=10, seed=seed),
    "logistic": lambda seed: LogisticRegressionClassifier(),
    "naive-bayes": lambda seed: CategoricalNaiveBayes(),
}


def load(
    name: str,
    seed: int = 0,
    classifier: str = "forest",
    **options,
) -> LoadedDataset:
    """Load (generate) a dataset by name, with predictions attached.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    seed:
        Generation (and classifier) seed.
    classifier:
        ``"forest"`` (paper default), ``"tree"`` or ``"logistic"`` —
        used only for datasets without built-in predictions.
    options:
        Extra generator options (e.g. ``priors_bins=6`` for COMPAS,
        ``n_rows=...`` everywhere).
    """
    key = (name, seed, classifier, tuple(sorted(options.items())))
    return _load_cached(key)


@lru_cache(maxsize=32)
def _load_cached(key: tuple) -> LoadedDataset:
    name, seed, classifier, option_items = key
    options = dict(option_items)
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {list(DATASET_NAMES)}"
        ) from None
    dataset = generator(seed=seed, **options)
    if dataset.pred_column is None:
        attach_predictions(dataset, classifier=classifier, seed=seed)
    return dataset


def classifier_factory(name: str):
    """The seed -> model factory of a named classifier.

    Shared lookup behind ``load(..., classifier=...)`` and the model-
    comparison ``classifier:<name>`` specs, so both surfaces accept
    exactly the same names and fail with the same message.
    """
    try:
        return _CLASSIFIERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown classifier {name!r}; available: {sorted(_CLASSIFIERS)}"
        ) from None


def attach_predictions(
    dataset: LoadedDataset, classifier: str = "forest", seed: int = 0
) -> None:
    """Train a classifier on a 70% split and attach full-data predictions.

    Mutates ``dataset`` in place: adds a ``"pred"`` column to its table
    and sets ``pred_column``.
    """
    factory = classifier_factory(classifier)
    x = dataset.encoded_features()
    y = dataset.truth_array()
    train_idx, _ = train_test_split(
        dataset.n_rows, test_fraction=0.3, seed=seed, stratify=y
    )
    model = factory(seed)
    model.fit(x[train_idx], y[train_idx])
    pred = model.predict(x).astype(np.int32)
    column = CategoricalColumn("pred", pred, [0, 1])
    dataset.table = dataset.table.with_column(column)
    dataset.pred_column = "pred"


def dataset_characteristics(seed: int = 0) -> list[dict[str, object]]:
    """The rows of the paper's Table 4 for our generated datasets.

    Prediction training is skipped — only schema statistics are needed.
    """
    rows = []
    for name in DATASET_NAMES:
        dataset = _GENERATORS[name](seed=seed)
        rows.append(
            {
                "dataset": name,
                "|D|": dataset.n_rows,
                "|A|": dataset.n_attributes,
                "|A|_cont": dataset.n_continuous,
                "|A|_cat": dataset.n_categorical,
            }
        )
    return rows
