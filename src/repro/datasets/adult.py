"""Synthetic *adult* (census income) dataset.

Substitute for the UCI Adult dataset [17]: 45,222 instances, 11
attributes (4 continuous: age, capital-gain, capital-loss,
hours-per-week; 7 categorical: workclass, education, marital-status,
occupation, relationship, race, sex). The class is income > 50K
(positive rate ≈ 0.25).

The generator plants the real dataset's dominant correlations — income
with marriage, professional/executive occupations, education, age,
hours and capital gains; relationship/marital-status/sex coherence;
education/occupation coherence — so that a classifier trained on it
over-predicts high income for married professionals (the paper's FPR
patterns, Table 5/6, Fig. 8a/9) and under-predicts for young unmarried
low-hours workers (the FNR patterns, Fig. 8b, Fig. 11).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry_types import LoadedDataset
from repro.datasets.sampling import bernoulli, seeded_generator, sigmoid
from repro.exceptions import DatasetError
from repro.tabular.discretize import BinSpec, discretize_table
from repro.tabular.table import Table

N_ROWS = 45_222

AGE_SPEC = BinSpec(
    method="edges", edges=(28.0, 37.0, 48.0), labels=("<=28", "29-37", "38-48", ">48")
)
GAIN_SPEC = BinSpec(method="edges", edges=(0.5,), labels=("0", ">0"))
LOSS_SPEC = BinSpec(method="edges", edges=(0.5,), labels=("0", ">0"))
HOURS_SPEC = BinSpec(method="edges", edges=(40.0,), labels=("<=40", ">40"))

EDUCATIONS = ["Dropout", "HS", "Some-college", "Assoc", "Bachelors", "Masters"]
OCCUPATIONS = ["Service", "Admin", "Craft", "Sales", "Machine-op", "Transport",
               "Exec", "Prof"]
MARITAL = ["Married", "Unmarried", "Divorced", "Widowed"]
RELATIONSHIPS = ["Husband", "Wife", "Not-in-family", "Own-child", "Unmarried",
                 "Other-relative"]


def generate(seed: int = 0, n_rows: int = N_ROWS) -> LoadedDataset:
    """Generate the adult-like dataset (no prediction column; attach one
    with :func:`repro.datasets.load`, which trains a classifier)."""
    if n_rows < 50:
        raise DatasetError("n_rows too small for a meaningful dataset")
    rng = seeded_generator(seed)

    age = np.clip(rng.normal(38.5, 13.5, n_rows), 17, 90)
    sex_male = rng.random(n_rows) < 0.68
    race = rng.choice(["White", "Black", "Other"], size=n_rows, p=[0.86, 0.09, 0.05])
    workclass = rng.choice(
        ["Private", "Self-emp", "Gov", "Other"], size=n_rows, p=[0.74, 0.11, 0.13, 0.02]
    )

    # Education, then occupation conditioned on education level.
    edu_idx = rng.choice(
        len(EDUCATIONS), size=n_rows, p=[0.13, 0.33, 0.22, 0.08, 0.17, 0.07]
    )
    edu_level = edu_idx.astype(float)  # 0=Dropout .. 5=Masters
    occ_logits = np.zeros((n_rows, len(OCCUPATIONS)))
    occ_logits[:, 6] = 0.55 * (edu_level - 2)  # Exec
    occ_logits[:, 7] = 0.85 * (edu_level - 2)  # Prof
    occ_logits[:, 0] = -0.4 * (edu_level - 2)  # Service
    occ_logits += rng.gumbel(0, 1, size=occ_logits.shape)
    occ_idx = occ_logits.argmax(axis=1)

    # Marital status depends on age; relationship follows marital + sex.
    p_married = sigmoid(0.09 * (age - 30)) * 0.75
    married = rng.random(n_rows) < p_married
    rest = rng.choice(["Unmarried", "Divorced", "Widowed"], size=n_rows,
                      p=[0.60, 0.28, 0.12])
    young = age <= 28
    rest = np.where(young & (rest == "Widowed"), "Unmarried", rest)
    marital = np.where(married, "Married", rest)
    relationship = np.empty(n_rows, dtype=object)
    relationship[married & sex_male] = "Husband"
    relationship[married & ~sex_male] = "Wife"
    single = ~married
    rel_single = rng.choice(
        ["Not-in-family", "Own-child", "Unmarried", "Other-relative"],
        size=n_rows, p=[0.48, 0.28, 0.18, 0.06],
    )
    # Own-child only plausible for the young.
    rel_single = np.where(
        (rel_single == "Own-child") & (age > 32), "Not-in-family", rel_single
    )
    relationship[single] = rel_single[single]

    hours = np.clip(rng.normal(40.5, 11.0, n_rows) + 3.0 * married, 1, 99)
    gain_draw = rng.random(n_rows)
    gain = np.where(gain_draw < 0.085, rng.gamma(2.0, 3000.0, n_rows), 0.0)
    loss = np.where(rng.random(n_rows) < 0.047, rng.gamma(2.0, 900.0, n_rows), 0.0)

    occ_prof = occ_idx == 7
    occ_exec = occ_idx == 6
    edu_bach = edu_idx == 4
    edu_masters = edu_idx == 5

    z_income = (
        -3.1
        + 1.55 * married
        + 0.95 * occ_prof
        + 0.85 * occ_exec
        + 0.65 * edu_bach
        + 1.05 * edu_masters
        + 0.30 * (edu_idx == 3)
        + 0.030 * (age - 38)
        - 0.00045 * (age - 50) ** 2
        + 0.045 * (hours - 40)
        + 2.6 * (gain > 5000)
        + 1.1 * ((gain > 0) & (gain <= 5000))
        + 0.8 * (loss > 0)
        + 0.35 * sex_male
        + 0.15 * (race == "White")
    )
    income = bernoulli(rng, sigmoid(z_income))

    raw = Table.from_dict(
        {
            "age": age,
            "workclass": list(workclass),
            "edu": [EDUCATIONS[i] for i in edu_idx],
            "status": list(marital),
            "occup": [OCCUPATIONS[i] for i in occ_idx],
            "relation": [str(r) for r in relationship],
            "race": list(race),
            "sex": np.where(sex_male, "Male", "Female").tolist(),
            "gain": gain,
            "loss": loss,
            "hoursXW": hours,
            "class": income.astype(int),
        }
    )
    table = discretize_table(
        raw,
        specs={
            "age": AGE_SPEC,
            "gain": GAIN_SPEC,
            "loss": LOSS_SPEC,
            "hoursXW": HOURS_SPEC,
        },
    )
    return LoadedDataset(
        name="adult",
        table=table,
        raw_table=raw,
        true_column="class",
        pred_column=None,
        attributes=[
            "age", "workclass", "edu", "status", "occup", "relation",
            "race", "sex", "gain", "loss", "hoursXW",
        ],
        n_continuous=4,
        n_categorical=7,
    )
