"""A synthetic ranking dataset with planted exposure bias.

Models a scored candidate pool (think job-matching or content
recommendation): every candidate has categorical profile attributes and
a real-valued relevance ``score`` that a ranker sorts by. A latent
quality drives both the score and the ground-truth ``class`` label —
but the score additionally carries a *planted penalty* for one
intersectional subgroup (``gender = f ∧ age = young``), pushing those
candidates down the ranking while each attribute alone stays close to
the global exposure. Exactly the showcase for subgroup rank divergence:
the conjunction lights up, the margins look innocent.

The table ships its own ``pred`` column (score above the median), so
the registry serves it without training a classifier; the ``score``
column is continuous and therefore never an analysis attribute.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry_types import LoadedDataset
from repro.datasets.sampling import seeded_generator
from repro.exceptions import DatasetError
from repro.tabular.table import Table

N_ROWS = 20_000
ATTRIBUTES = ["gender", "age", "region", "edu"]
#: The subgroup whose scores carry the planted penalty.
PENALIZED = {"gender": "f", "age": "young"}
#: Score penalty applied to the planted subgroup (in score units; the
#: noise scale is 0.5, so the penalty is strong but not separable).
PENALTY = 0.8

_CATEGORIES = {
    "gender": ["f", "m"],
    "age": ["young", "mid", "senior"],
    "region": ["north", "south", "east", "west"],
    "edu": ["basic", "college", "graduate"],
}


def generate(seed: int = 0, n_rows: int = N_ROWS) -> LoadedDataset:
    """Generate the ranking dataset with planted exposure divergence."""
    if n_rows < 10:
        raise DatasetError("n_rows too small for a meaningful dataset")
    rng = seeded_generator(seed)
    columns = {
        name: rng.integers(0, len(cats), size=n_rows)
        for name, cats in _CATEGORIES.items()
    }
    quality = rng.normal(0.0, 1.0, size=n_rows)
    score = quality + rng.normal(0.0, 0.5, size=n_rows)
    penalized = (
        columns["gender"] == _CATEGORIES["gender"].index(PENALIZED["gender"])
    ) & (columns["age"] == _CATEGORIES["age"].index(PENALIZED["age"]))
    score = score - PENALTY * penalized
    truth = quality > 0.0
    pred = score >= np.median(score)

    data: dict[str, list] = {
        name: [_CATEGORIES[name][v] for v in values]
        for name, values in columns.items()
    }
    data["score"] = [float(v) for v in score]
    data["class"] = [int(v) for v in truth]
    data["pred"] = [int(v) for v in pred]
    table = Table.from_dict(data)
    return LoadedDataset(
        name="ranking",
        table=table,
        raw_table=table,
        true_column="class",
        pred_column="pred",
        attributes=list(ATTRIBUTES),
        n_continuous=1,
        n_categorical=len(ATTRIBUTES),
    )
