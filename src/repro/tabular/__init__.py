"""Column-oriented tabular data substrate.

This subpackage provides the small slice of dataframe functionality that
DivExplorer needs: typed columns backed by numpy arrays, a schema-aware
:class:`Table`, discretization of continuous attributes, and CSV I/O.
"""

from repro.tabular.column import CategoricalColumn, Column, ContinuousColumn
from repro.tabular.discretize import (
    MISSING_LABEL,
    BinSpec,
    discretize_column,
    discretize_table,
    format_interval_labels,
    quantile_edges,
    uniform_edges,
)
from repro.tabular.io import read_csv, write_csv
from repro.tabular.table import Table

__all__ = [
    "BinSpec",
    "CategoricalColumn",
    "Column",
    "ContinuousColumn",
    "MISSING_LABEL",
    "Table",
    "discretize_column",
    "discretize_table",
    "format_interval_labels",
    "quantile_edges",
    "read_csv",
    "uniform_edges",
    "write_csv",
]
