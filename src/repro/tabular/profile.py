"""Dataset profiling: per-column summaries.

Produces the at-a-glance description a data scientist checks before an
audit — row counts, per-attribute cardinalities and top categories,
numeric ranges — and the rows feeding dataset sections of the markdown
report.
"""

from __future__ import annotations

import numpy as np

from repro.tabular.table import Table


def profile_table(table: Table, top_categories: int = 3) -> list[dict[str, object]]:
    """Per-column summary rows for ``table``.

    Categorical columns report cardinality and the most frequent
    categories with shares; continuous columns report min/median/max.
    """
    rows: list[dict[str, object]] = []
    for name in table.column_names:
        column = table.column(name)
        if column.is_categorical:
            cat = table.categorical(name)
            counts = cat.value_counts()
            top = sorted(counts.items(), key=lambda kv: -kv[1])[:top_categories]
            described = ", ".join(
                f"{value} ({count / max(len(cat), 1):.0%})"
                for value, count in top
            )
            rows.append(
                {
                    "column": name,
                    "type": "categorical",
                    "cardinality": cat.cardinality,
                    "summary": described,
                }
            )
        else:
            cont = table.continuous(name)
            observed = cont.values[~np.isnan(cont.values)]
            if observed.size:
                summary = (
                    f"min {observed.min():g}, median {np.median(observed):g}, "
                    f"max {observed.max():g}"
                )
                if missing := len(cont) - observed.size:
                    summary += f", {missing} missing"
            elif len(cont):
                summary = "(all missing)"
            else:
                summary = "(empty)"
            rows.append(
                {
                    "column": name,
                    "type": "continuous",
                    "cardinality": "-",
                    "summary": summary,
                }
            )
    return rows


def class_balance(table: Table, class_column: str) -> dict[object, float]:
    """Share of each class value (for the report header)."""
    cat = table.categorical(class_column)
    n = max(len(cat), 1)
    return {value: count / n for value, count in cat.value_counts().items()}
