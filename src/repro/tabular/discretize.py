"""Discretization of continuous attributes.

Frequent-pattern mining requires discrete data (paper, Sec. 5):
continuous attributes are discretized *after* classification, so the
classifier itself never depends on the binning. This module implements
the binning strategies used in the paper's experiments — quantile
(equal-frequency), uniform (equal-width), and explicit user-provided
edges — plus human-readable interval labels such as ``"25-45"`` or
``">45"`` matching the paper's pattern notation.

Missing values (``NaN``) never silently join a numeric bin:
``BinSpec.on_missing`` either routes them to an explicit ``"missing"``
category (the default) or rejects the column with a
:class:`~repro.exceptions.DiscretizationError`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.exceptions import DiscretizationError
from repro.tabular.column import CategoricalColumn, ContinuousColumn
from repro.tabular.table import Table

#: Category label assigned to missing (NaN) values under
#: ``on_missing="label"``.
MISSING_LABEL = "missing"


@dataclass(frozen=True)
class BinSpec:
    """How to discretize one continuous column.

    Exactly one strategy applies per column:

    - ``method="quantile"`` with ``bins=k``: equal-frequency bins;
    - ``method="uniform"`` with ``bins=k``: equal-width bins;
    - ``method="edges"`` with explicit interior ``edges``.

    ``labels`` optionally overrides the auto-generated interval labels.

    ``on_missing`` decides what happens to ``NaN`` values:

    - ``"label"`` (default): NaN rows get a dedicated ``"missing"``
      category appended after the interval bins;
    - ``"error"``: any NaN raises :class:`DiscretizationError`.
    """

    method: str = "quantile"
    bins: int = 3
    edges: tuple[float, ...] = field(default_factory=tuple)
    labels: tuple[str, ...] = field(default_factory=tuple)
    on_missing: str = "label"

    def __post_init__(self) -> None:
        if self.method not in ("quantile", "uniform", "edges"):
            raise DiscretizationError(f"unknown discretization method {self.method!r}")
        if self.method in ("quantile", "uniform") and self.bins < 2:
            raise DiscretizationError("bins must be >= 2")
        if self.method == "edges" and not self.edges:
            raise DiscretizationError("method='edges' requires explicit edges")
        if self.on_missing not in ("label", "error"):
            raise DiscretizationError(
                f"on_missing must be 'label' or 'error', got {self.on_missing!r}"
            )


def _observed(values: np.ndarray, name: str = "") -> np.ndarray:
    """The non-NaN values; edge computation must ignore missing rows,
    otherwise ``np.quantile``/``min``/``max`` propagate NaN into edges."""
    arr = np.asarray(values, dtype=float)
    observed = arr[~np.isnan(arr)]
    if not observed.size:
        where = f"column {name!r}: " if name else ""
        raise DiscretizationError(
            f"{where}no non-missing values to compute bin edges from"
        )
    return observed


def _raw_quantiles(values: np.ndarray, bins: int) -> np.ndarray:
    """The ``bins - 1`` interior quantiles, duplicates included."""
    qs = np.linspace(0, 1, bins + 1)[1:-1]
    return np.quantile(_observed(values), qs)


def quantile_edges(values: np.ndarray, bins: int) -> list[float]:
    """Interior edges of equal-frequency bins over ``values``.

    Duplicate quantiles (heavy ties) are collapsed so the resulting bins
    are strictly increasing; the effective number of bins may therefore
    be smaller than requested. Missing (NaN) values are ignored.
    """
    edges = _raw_quantiles(values, bins)
    unique: list[float] = []
    for e in edges:
        if not unique or e > unique[-1]:
            unique.append(float(e))
    return unique


def uniform_edges(values: np.ndarray, bins: int) -> list[float]:
    """Interior edges of equal-width bins over ``values``.

    Missing (NaN) values are ignored.
    """
    arr = _observed(values)
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return []
    return [lo + (hi - lo) * i / bins for i in range(1, bins)]


def format_interval_labels(edges: Sequence[float]) -> list[str]:
    """Build labels ``<=e1``, ``(e1-e2]``, ..., ``>ek`` for interior edges.

    Edges that are whole numbers are printed without a decimal point so
    labels read like the paper's (``age>45`` rather than ``age>45.0``).
    """

    def fmt(x: float) -> str:
        return str(int(x)) if float(x).is_integer() else f"{x:g}"

    if not edges:
        return ["all"]
    labels = [f"<={fmt(edges[0])}"]
    for lo, hi in zip(edges, edges[1:]):
        labels.append(f"({fmt(lo)}-{fmt(hi)}]")
    labels.append(f">{fmt(edges[-1])}")
    return labels


def _reconcile_labels(
    column: ContinuousColumn, spec: BinSpec, edges: list[float]
) -> list[str]:
    """User labels (validated against the *effective* bins) or auto labels.

    Quantile binning may collapse duplicate edges, so the effective bin
    count can be lower than ``spec.bins``; a user who sized ``labels``
    for the requested count gets an error that names the collapsed
    edges instead of a bare count mismatch.
    """
    if not spec.labels:
        return format_interval_labels(edges)
    labels = list(spec.labels)
    expected = len(edges) + 1
    if len(labels) == expected:
        return labels
    if spec.method == "quantile" and len(labels) == spec.bins:
        raw = _raw_quantiles(column.values, spec.bins)
        collapsed = sorted(
            {float(e) for e, n in Counter(raw.tolist()).items() if n > 1}
        )
        raise DiscretizationError(
            f"column {column.name!r}: {len(labels)} labels were given for the "
            f"{spec.bins} requested quantile bins, but tied values collapsed "
            f"duplicate edge(s) {collapsed} leaving only {expected} effective "
            f"bins; pass {expected} labels or choose different binning"
        )
    raise DiscretizationError(
        f"column {column.name!r}: {len(labels)} labels for {expected} bins"
    )


def discretize_column(column: ContinuousColumn, spec: BinSpec) -> CategoricalColumn:
    """Discretize one continuous column according to ``spec``.

    Returns a categorical column with interval labels as categories.
    Values are assigned via ``searchsorted`` on interior edges, i.e. the
    bin of value ``v`` is ``#edges < v`` (left-open intervals except the
    first). Missing (NaN) values are handled per ``spec.on_missing``:
    appended as a dedicated ``"missing"`` category (default) or rejected
    with :class:`DiscretizationError` — never silently placed in the
    top bin.
    """
    values = np.asarray(column.values, dtype=float)
    missing = np.isnan(values)
    n_missing = int(missing.sum())
    if n_missing and spec.on_missing == "error":
        raise DiscretizationError(
            f"column {column.name!r}: {n_missing} missing (NaN) value(s) and "
            "on_missing='error'; drop or impute them, or use "
            "on_missing='label' to bin them as a 'missing' category"
        )

    if spec.method == "quantile":
        edges = quantile_edges(values, spec.bins)
    elif spec.method == "uniform":
        edges = uniform_edges(values, spec.bins)
    else:
        edges = sorted(float(e) for e in spec.edges)
        if len(set(edges)) != len(edges):
            raise DiscretizationError(
                f"column {column.name!r}: duplicate explicit edges {edges}"
            )
    labels = _reconcile_labels(column, spec, edges)

    codes = np.searchsorted(
        np.asarray(edges, dtype=float), values, side="left"
    ).astype(np.int32)
    if not n_missing:
        return CategoricalColumn(column.name, codes, labels)

    if MISSING_LABEL in labels:
        raise DiscretizationError(
            f"column {column.name!r}: label {MISSING_LABEL!r} collides with "
            "the reserved missing-value category"
        )
    # NaN compares false with every edge, so searchsorted dumps it in the
    # top bin; reroute those rows to the dedicated trailing category.
    codes[missing] = len(labels)
    return CategoricalColumn(column.name, codes, labels + [MISSING_LABEL])


def discretize_table(
    table: Table,
    specs: dict[str, BinSpec] | None = None,
    default_bins: int = 3,
) -> Table:
    """Discretize every continuous column of ``table``.

    ``specs`` maps column names to :class:`BinSpec`; columns without an
    entry get quantile binning with ``default_bins`` bins. Categorical
    columns pass through unchanged.
    """
    specs = specs or {}
    out = table
    for name in table.continuous_names:
        spec = specs.get(name, BinSpec(method="quantile", bins=default_bins))
        out = out.with_column(discretize_column(table.continuous(name), spec))
    return out
