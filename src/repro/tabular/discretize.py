"""Discretization of continuous attributes.

Frequent-pattern mining requires discrete data (paper, Sec. 5):
continuous attributes are discretized *after* classification, so the
classifier itself never depends on the binning. This module implements
the binning strategies used in the paper's experiments — quantile
(equal-frequency), uniform (equal-width), and explicit user-provided
edges — plus human-readable interval labels such as ``"25-45"`` or
``">45"`` matching the paper's pattern notation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.exceptions import DiscretizationError
from repro.tabular.column import CategoricalColumn, ContinuousColumn
from repro.tabular.table import Table


@dataclass(frozen=True)
class BinSpec:
    """How to discretize one continuous column.

    Exactly one strategy applies per column:

    - ``method="quantile"`` with ``bins=k``: equal-frequency bins;
    - ``method="uniform"`` with ``bins=k``: equal-width bins;
    - ``method="edges"`` with explicit interior ``edges``.

    ``labels`` optionally overrides the auto-generated interval labels.
    """

    method: str = "quantile"
    bins: int = 3
    edges: tuple[float, ...] = field(default_factory=tuple)
    labels: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.method not in ("quantile", "uniform", "edges"):
            raise DiscretizationError(f"unknown discretization method {self.method!r}")
        if self.method in ("quantile", "uniform") and self.bins < 2:
            raise DiscretizationError("bins must be >= 2")
        if self.method == "edges" and not self.edges:
            raise DiscretizationError("method='edges' requires explicit edges")


def quantile_edges(values: np.ndarray, bins: int) -> list[float]:
    """Interior edges of equal-frequency bins over ``values``.

    Duplicate quantiles (heavy ties) are collapsed so the resulting bins
    are strictly increasing; the effective number of bins may therefore
    be smaller than requested.
    """
    qs = np.linspace(0, 1, bins + 1)[1:-1]
    edges = np.quantile(np.asarray(values, dtype=float), qs)
    unique: list[float] = []
    for e in edges:
        if not unique or e > unique[-1]:
            unique.append(float(e))
    return unique


def uniform_edges(values: np.ndarray, bins: int) -> list[float]:
    """Interior edges of equal-width bins over ``values``."""
    arr = np.asarray(values, dtype=float)
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return []
    return [lo + (hi - lo) * i / bins for i in range(1, bins)]


def format_interval_labels(edges: Sequence[float]) -> list[str]:
    """Build labels ``<=e1``, ``(e1-e2]``, ..., ``>ek`` for interior edges.

    Edges that are whole numbers are printed without a decimal point so
    labels read like the paper's (``age>45`` rather than ``age>45.0``).
    """

    def fmt(x: float) -> str:
        return str(int(x)) if float(x).is_integer() else f"{x:g}"

    if not edges:
        return ["all"]
    labels = [f"<={fmt(edges[0])}"]
    for lo, hi in zip(edges, edges[1:]):
        labels.append(f"({fmt(lo)}-{fmt(hi)}]")
    labels.append(f">{fmt(edges[-1])}")
    return labels


def discretize_column(column: ContinuousColumn, spec: BinSpec) -> CategoricalColumn:
    """Discretize one continuous column according to ``spec``.

    Returns a categorical column with interval labels as categories.
    Values are assigned via ``searchsorted`` on interior edges, i.e. the
    bin of value ``v`` is ``#edges < v`` (left-open intervals except the
    first).
    """
    if spec.method == "quantile":
        edges = quantile_edges(column.values, spec.bins)
    elif spec.method == "uniform":
        edges = uniform_edges(column.values, spec.bins)
    else:
        edges = sorted(float(e) for e in spec.edges)
        if len(set(edges)) != len(edges):
            raise DiscretizationError(
                f"column {column.name!r}: duplicate explicit edges {edges}"
            )
    labels = list(spec.labels) if spec.labels else format_interval_labels(edges)
    expected = len(edges) + 1
    if len(labels) != expected:
        raise DiscretizationError(
            f"column {column.name!r}: {len(labels)} labels for {expected} bins"
        )
    codes = np.searchsorted(np.asarray(edges, dtype=float), column.values, side="left")
    return CategoricalColumn(column.name, codes.astype(np.int32), labels)


def discretize_table(
    table: Table,
    specs: dict[str, BinSpec] | None = None,
    default_bins: int = 3,
) -> Table:
    """Discretize every continuous column of ``table``.

    ``specs`` maps column names to :class:`BinSpec`; columns without an
    entry get quantile binning with ``default_bins`` bins. Categorical
    columns pass through unchanged.
    """
    specs = specs or {}
    out = table
    for name in table.continuous_names:
        spec = specs.get(name, BinSpec(method="quantile", bins=default_bins))
        out = out.with_column(discretize_column(table.continuous(name), spec))
    return out
