"""CSV reading and writing for :class:`~repro.tabular.table.Table`.

A deliberately small, dependency-free CSV layer: the library ships
synthetic dataset generators, but downstream users will want to load
their own data from disk, so round-trippable CSV support is part of the
public API.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.exceptions import SchemaError
from repro.tabular.table import Table


def read_csv(path: str | Path, categorical: set[str] | None = None) -> Table:
    """Load a CSV file into a :class:`Table`.

    Column types are inferred: a column parses as continuous if every
    value parses as a float and it has enough distinct values, otherwise
    it is categorical. Columns named in ``categorical`` are forced to be
    categorical regardless of content.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty CSV file") from None
        rows = list(reader)
    if any(len(r) != len(header) for r in rows):
        raise SchemaError(f"{path}: ragged rows in CSV")
    force_cat = categorical or set()
    data: dict[str, list] = {}
    for j, name in enumerate(header):
        raw = [r[j] for r in rows]
        if name in force_cat:
            data[name] = raw
            continue
        parsed = _try_parse_floats(raw)
        data[name] = parsed if parsed is not None else raw
    return Table.from_dict(data)


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV with a header row."""
    path = Path(path)
    decoded = table.to_dict()
    names = table.column_names
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for i in range(table.n_rows):
            writer.writerow([decoded[n][i] for n in names])


def _try_parse_floats(raw: list[str]) -> list[float] | None:
    """Parse all strings as floats, or return ``None`` if any fails."""
    out: list[float] = []
    for s in raw:
        try:
            out.append(float(s))
        except ValueError:
            return None
    return out
