"""Schema-aware table of typed columns.

:class:`Table` is the dataset container used across the library. It is a
thin, column-oriented structure: each column is a
:class:`~repro.tabular.column.Column` and all columns share the same row
count. It supports the relational operations DivExplorer needs —
selection by boolean mask or index array, column addition/removal, and
conversion to the dictionary-encoded matrix consumed by the miners.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.exceptions import SchemaError
from repro.tabular.column import CategoricalColumn, Column, ContinuousColumn


class Table:
    """An ordered collection of equally sized named columns.

    Parameters
    ----------
    columns:
        The columns, in schema order. Names must be unique and lengths
        must agree.
    """

    def __init__(self, columns: Sequence[Column]) -> None:
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names: {names}")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"columns have inconsistent lengths: {sorted(lengths)}")
        self._columns: dict[str, Column] = {c.name: c for c in columns}
        self._n_rows = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Any]]) -> "Table":
        """Build a table from ``{name: values}``, inferring column types.

        Numeric value sequences with many distinct values become
        continuous columns; everything else is dictionary-encoded as
        categorical. Integer-valued sequences with few distinct values
        (at most 20) are treated as categorical, which matches how the
        paper treats already-discrete attributes.
        """
        columns: list[Column] = []
        for name, values in data.items():
            vals = list(values)
            if _looks_continuous(vals):
                columns.append(ContinuousColumn(name, np.asarray(vals, dtype=float)))
            else:
                columns.append(CategoricalColumn.from_values(name, vals))
        return cls(columns)

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of instances ``|D|``."""
        return self._n_rows

    @property
    def column_names(self) -> list[str]:
        """Column names in schema order."""
        return list(self._columns)

    @property
    def n_columns(self) -> int:
        """Number of attributes ``|A|``."""
        return len(self._columns)

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> Column:
        """Return the column called ``name`` (raises ``SchemaError`` if absent)."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def categorical(self, name: str) -> CategoricalColumn:
        """Return column ``name``, asserting it is categorical."""
        col = self.column(name)
        if not isinstance(col, CategoricalColumn):
            raise SchemaError(f"column {name!r} is not categorical")
        return col

    def continuous(self, name: str) -> ContinuousColumn:
        """Return column ``name``, asserting it is continuous."""
        col = self.column(name)
        if not isinstance(col, ContinuousColumn):
            raise SchemaError(f"column {name!r} is not continuous")
        return col

    @property
    def categorical_names(self) -> list[str]:
        """Names of categorical columns, in schema order."""
        return [n for n, c in self._columns.items() if c.is_categorical]

    @property
    def continuous_names(self) -> list[str]:
        """Names of continuous columns, in schema order."""
        return [n for n, c in self._columns.items() if c.is_continuous]

    # ------------------------------------------------------------------
    # relational operations (all return new tables)
    # ------------------------------------------------------------------

    def select(self, mask_or_indices: np.ndarray) -> "Table":
        """Return a table with rows picked by a boolean mask or index array."""
        sel = np.asarray(mask_or_indices)
        if sel.dtype == bool and sel.shape != (self._n_rows,):
            raise SchemaError(
                f"boolean mask length {sel.shape} != row count {self._n_rows}"
            )
        return Table([c.take(sel) for c in self._columns.values()])

    def with_column(self, column: Column) -> "Table":
        """Return a table with ``column`` appended (or replaced by name)."""
        if len(column) != self._n_rows and self._columns:
            raise SchemaError(
                f"column {column.name!r} has {len(column)} rows, table has {self._n_rows}"
            )
        cols = [c for c in self._columns.values() if c.name != column.name]
        cols.append(column)
        return Table(cols)

    def without_columns(self, names: Iterable[str]) -> "Table":
        """Return a table with the named columns dropped."""
        drop = set(names)
        missing = drop - set(self._columns)
        if missing:
            raise SchemaError(f"cannot drop missing columns: {sorted(missing)}")
        return Table([c for c in self._columns.values() if c.name not in drop])

    def project(self, names: Sequence[str]) -> "Table":
        """Return a table containing only the named columns, in given order."""
        return Table([self.column(n) for n in names])

    def mask_equal(self, name: str, value: Any) -> np.ndarray:
        """Boolean mask of rows where categorical column ``name`` == ``value``."""
        return self.categorical(name).mask_equal(value)

    def sort_by(self, name: str, ascending: bool = True) -> "Table":
        """Return a table sorted by one column (stable sort).

        Categorical columns sort by decoded value; continuous by value.
        """
        column = self.column(name)
        if column.is_categorical:
            cat = self.categorical(name)
            decoded = np.array([str(cat.categories[c]) for c in cat.codes])
            order = np.argsort(decoded, kind="stable")
        else:
            order = np.argsort(self.continuous(name).values, kind="stable")
        if not ascending:
            order = order[::-1]
        return self.select(order)

    def concat(self, other: "Table") -> "Table":
        """Stack two tables with identical schemas row-wise.

        Categorical columns must share the same categories (in order),
        so codes remain comparable.
        """
        if self.column_names != other.column_names:
            raise SchemaError(
                f"schema mismatch: {self.column_names} vs {other.column_names}"
            )
        columns: list[Column] = []
        for name in self.column_names:
            a, b = self.column(name), other.column(name)
            if a.is_categorical != b.is_categorical:
                raise SchemaError(f"column {name!r}: type mismatch")
            if a.is_categorical:
                cat_a, cat_b = self.categorical(name), other.categorical(name)
                if cat_a.categories != cat_b.categories:
                    raise SchemaError(
                        f"column {name!r}: category mismatch; re-encode first"
                    )
                columns.append(
                    CategoricalColumn(
                        name,
                        np.concatenate([cat_a.codes, cat_b.codes]),
                        cat_a.categories,
                    )
                )
            else:
                columns.append(
                    ContinuousColumn(
                        name,
                        np.concatenate(
                            [
                                self.continuous(name).values,
                                other.continuous(name).values,
                            ]
                        ),
                    )
                )
        return Table(columns)

    # ------------------------------------------------------------------
    # encoding for mining / learning
    # ------------------------------------------------------------------

    def encoded_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Return an ``(n_rows, n_cols) int32`` matrix of category codes.

        All requested columns must be categorical. This is the input
        format for the frequent-pattern miners and the tree learners.
        """
        use = list(names) if names is not None else self.categorical_names
        cols = [self.categorical(n) for n in use]
        if not cols:
            return np.empty((self._n_rows, 0), dtype=np.int32)
        return np.column_stack([c.codes for c in cols]).astype(np.int32, copy=False)

    def cardinalities(self, names: Sequence[str] | None = None) -> list[int]:
        """Category counts ``m_a`` for the requested categorical columns."""
        use = list(names) if names is not None else self.categorical_names
        return [self.categorical(n).cardinality for n in use]

    # ------------------------------------------------------------------
    # conversion / inspection
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, list[Any]]:
        """Return ``{name: decoded values}`` for all columns."""
        return {n: c.values_as_objects() for n, c in self._columns.items()}

    def head(self, n: int = 5) -> "Table":
        """Return the first ``n`` rows."""
        return self.select(np.arange(min(n, self._n_rows)))

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{n}:{'cat' if c.is_categorical else 'num'}"
            for n, c in self._columns.items()
        )
        return f"Table(n_rows={self._n_rows}, columns=[{kinds}])"


def _looks_continuous(values: list[Any]) -> bool:
    """Heuristic type inference used by :meth:`Table.from_dict`."""
    if not values:
        return False
    if any(isinstance(v, bool) or isinstance(v, str) for v in values):
        return False
    if all(isinstance(v, (int, float, np.integer, np.floating)) for v in values):
        if all(float(v).is_integer() for v in values):
            return len(set(values)) > 20
        return True
    return False
