"""Typed columns backed by numpy arrays.

Two concrete column kinds exist:

- :class:`CategoricalColumn` stores integer codes plus a list of category
  labels (the dictionary encoding used throughout the library);
- :class:`ContinuousColumn` stores float values and must be discretized
  before pattern mining.

Columns are immutable value objects: transformation methods return new
columns rather than mutating in place.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.exceptions import SchemaError


class Column:
    """Abstract base for a named, typed column of values.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"age"``.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise SchemaError("column name must be a non-empty string")
        self.name = str(name)

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def is_categorical(self) -> bool:
        """Whether this column holds dictionary-encoded categories."""
        return isinstance(self, CategoricalColumn)

    @property
    def is_continuous(self) -> bool:
        """Whether this column holds raw float values."""
        return isinstance(self, ContinuousColumn)

    def take(self, indices: np.ndarray) -> "Column":  # pragma: no cover
        """Return a new column with rows selected by ``indices``."""
        raise NotImplementedError

    def values_as_objects(self) -> list[Any]:  # pragma: no cover
        """Return the column as a plain Python list of decoded values."""
        raise NotImplementedError


class CategoricalColumn(Column):
    """A dictionary-encoded categorical column.

    Stores an ``int32`` code array plus the ordered list of category
    labels. Codes index into ``categories``; no missing-value sentinel is
    used (datasets are cleaned before construction, matching the paper's
    preprocessing that removes instances with missing values).
    """

    def __init__(
        self,
        name: str,
        codes: np.ndarray | Sequence[int],
        categories: Sequence[Any],
    ) -> None:
        super().__init__(name)
        codes_arr = np.asarray(codes, dtype=np.int32)
        if codes_arr.ndim != 1:
            raise SchemaError(f"column {name!r}: codes must be 1-dimensional")
        cats = list(categories)
        if len(set(map(str, cats))) != len(cats):
            raise SchemaError(f"column {name!r}: duplicate category labels")
        if codes_arr.size and (codes_arr.min() < 0 or codes_arr.max() >= len(cats)):
            raise SchemaError(
                f"column {name!r}: codes out of range for {len(cats)} categories"
            )
        self.codes = codes_arr
        self.categories = cats

    @classmethod
    def from_values(cls, name: str, values: Iterable[Any]) -> "CategoricalColumn":
        """Build a column by dictionary-encoding raw ``values``.

        Categories are ordered by first appearance when values are not
        sortable, otherwise sorted for deterministic output.
        """
        vals = list(values)
        uniques = sorted(set(vals), key=lambda v: (str(type(v)), str(v)))
        index = {v: i for i, v in enumerate(uniques)}
        codes = np.fromiter((index[v] for v in vals), dtype=np.int32, count=len(vals))
        return cls(name, codes, uniques)

    def __len__(self) -> int:
        return int(self.codes.size)

    @property
    def cardinality(self) -> int:
        """Number of distinct categories (``m_a`` in the paper)."""
        return len(self.categories)

    def value_counts(self) -> dict[Any, int]:
        """Return a mapping ``category -> number of rows``."""
        counts = np.bincount(self.codes, minlength=len(self.categories))
        return {cat: int(c) for cat, c in zip(self.categories, counts)}

    def mask_equal(self, value: Any) -> np.ndarray:
        """Boolean mask of rows whose decoded value equals ``value``."""
        try:
            code = self.categories.index(value)
        except ValueError:
            return np.zeros(len(self), dtype=bool)
        return self.codes == code

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        return CategoricalColumn(self.name, self.codes[indices], self.categories)

    def values_as_objects(self) -> list[Any]:
        return [self.categories[c] for c in self.codes]

    def __repr__(self) -> str:
        return (
            f"CategoricalColumn({self.name!r}, n={len(self)}, "
            f"cardinality={self.cardinality})"
        )


class ContinuousColumn(Column):
    """A raw float-valued column, to be discretized before mining.

    ``NaN`` values are admitted and denote *missing* observations; they
    are resolved at discretization time according to
    :attr:`repro.tabular.discretize.BinSpec.on_missing` (binned into an
    explicit ``"missing"`` category or rejected with an error). They
    never silently join a numeric bin.
    """

    def __init__(self, name: str, values: np.ndarray | Sequence[float]) -> None:
        super().__init__(name)
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise SchemaError(f"column {name!r}: values must be 1-dimensional")
        self.values = arr

    def __len__(self) -> int:
        return int(self.values.size)

    def take(self, indices: np.ndarray) -> "ContinuousColumn":
        return ContinuousColumn(self.name, self.values[indices])

    def values_as_objects(self) -> list[Any]:
        return [float(v) for v in self.values]

    def n_missing(self) -> int:
        """Number of missing (``NaN``) values."""
        return int(np.isnan(self.values).sum())

    def min(self) -> float:
        """Minimum non-missing value (raises on empty/all-NaN column)."""
        return float(self._observed("min").min())

    def max(self) -> float:
        """Maximum non-missing value (raises on empty/all-NaN column)."""
        return float(self._observed("max").max())

    def _observed(self, what: str) -> np.ndarray:
        """The non-NaN values, for NaN-insensitive aggregates."""
        if not len(self):
            raise SchemaError(f"column {self.name!r} is empty")
        observed = self.values[~np.isnan(self.values)]
        if not observed.size:
            raise SchemaError(
                f"column {self.name!r}: cannot take {what} of all-missing values"
            )
        return observed

    def __repr__(self) -> str:
        return f"ContinuousColumn({self.name!r}, n={len(self)})"
